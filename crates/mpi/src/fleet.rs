//! Fleet execution: many independent jobs in flight at once, each
//! streaming records into its own sink.
//!
//! This is the driver side of a machine-wide monitoring story: a
//! simulated "fleet" of tenants (mixed workloads, some with fault
//! plans) producing concurrent trace streams, e.g. into `pio-fleetd`.
//! Jobs are distributed over a work-stealing pool exactly like the
//! multi-seed ensemble path: which thread runs a job cannot affect that
//! job (every simulation owns all of its state and RNG streams), and
//! results are placed by job index, so the outcome is bit-identical for
//! any thread count.

use crate::program::Job;
use crate::runner::{RunConfig, RunError, RunReport, Runner};
use pio_trace::RecordSink;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One tenant of a fleet run: a named job plus its run configuration
/// (platform, seed, optional fault plan).
pub struct FleetJob {
    /// Tenant label (also the trace experiment name by convention).
    pub name: String,
    /// The workload.
    pub job: Job,
    /// Platform, seed, and optional fault plan.
    pub cfg: RunConfig,
}

/// The outcome of one fleet tenant.
pub struct FleetRun {
    /// The tenant's label.
    pub name: String,
    /// The streaming run's report (no buffered trace — records went to
    /// the tenant's sink).
    pub report: Result<RunReport, RunError>,
}

/// Run every `(job, sink)` pair concurrently over up to `threads` OS
/// threads, streaming each job's records into its own sink. Returns
/// outcomes (and the sinks back) in job order regardless of completion
/// order. Each sink sees exactly its own job's stream — records in
/// completion order, [`RecordSink::phase_end`] at barrier releases,
/// [`RecordSink::finish`] at end of stream.
pub fn run_fleet<S>(jobs: Vec<(FleetJob, S)>, threads: usize) -> Vec<(FleetRun, S)>
where
    S: RecordSink + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n).max(1);
    let slots: Vec<Mutex<Option<(FleetJob, S)>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let done: Vec<Mutex<Option<(FleetRun, S)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (fj, mut sink) = slots[i]
                    .lock()
                    .expect("fleet slot")
                    .take()
                    .expect("each job claimed exactly once");
                let report = Runner::new(&fj.job, fj.cfg.clone())
                    .sink(&mut sink)
                    .execute_one();
                *done[i].lock().expect("fleet result slot") = Some((
                    FleetRun {
                        name: fj.name,
                        report,
                    },
                    sink,
                ));
            });
        }
    })
    .expect("fleet scope");
    done.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("fleet result lock")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FileSpec, ProgramBuilder};
    use pio_fs::FsConfig;
    use pio_trace::{Trace, TraceMeta};

    const MB: u64 = 1 << 20;

    fn job(ranks: u32) -> Job {
        let programs = (0..ranks)
            .map(|r| {
                ProgramBuilder::new()
                    .open(0)
                    .seek(0, r as u64 * 16 * MB)
                    .write(0, 4 * MB)
                    .barrier()
                    .read(0, 4 * MB)
                    .close(0)
                    .build()
            })
            .collect();
        Job {
            programs,
            files: vec![FileSpec { shared: true }],
        }
    }

    fn fleet(n: usize) -> Vec<(FleetJob, Trace)> {
        (0..n)
            .map(|i| {
                let name = format!("tenant-{i}");
                let cfg = RunConfig::new(FsConfig::tiny_test(), 1000 + i as u64, name.clone());
                let sink = Trace::new(TraceMeta {
                    experiment: name.clone(),
                    platform: "tiny".into(),
                    ranks: 4,
                    seed: cfg.seed,
                });
                (
                    FleetJob {
                        name,
                        job: job(4),
                        cfg,
                    },
                    sink,
                )
            })
            .collect()
    }

    #[test]
    fn fleet_runs_are_bit_identical_for_any_thread_count() {
        let serial = run_fleet(fleet(6), 1);
        let parallel = run_fleet(fleet(6), 4);
        assert_eq!(serial.len(), 6);
        for ((ra, ta), (rb, tb)) in serial.iter().zip(&parallel) {
            assert_eq!(ra.name, rb.name);
            let (a, b) = (
                ra.report.as_ref().expect("run ok"),
                rb.report.as_ref().expect("run ok"),
            );
            assert_eq!(a.end, b.end);
            assert_eq!(a.events, b.events);
            assert_eq!(ta.records, tb.records);
            assert!(!ta.records.is_empty());
        }
    }

    #[test]
    fn each_sink_sees_only_its_own_job() {
        let runs = run_fleet(fleet(3), 3);
        for (i, (run, trace)) in runs.iter().enumerate() {
            assert_eq!(run.name, format!("tenant-{i}"));
            // Every record's rank is within this job's rank space.
            assert!(trace.records.iter().all(|r| r.rank < 4));
            let report = run.report.as_ref().expect("run ok");
            assert_eq!(report.seed, 1000 + i as u64);
        }
    }

    #[test]
    fn empty_fleet_is_a_no_op() {
        let runs: Vec<(FleetRun, Trace)> = run_fleet(Vec::new(), 4);
        assert!(runs.is_empty());
    }
}
