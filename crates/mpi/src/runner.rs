//! Job execution: a [`Runner`] builder drives one or many seeded
//! simulations of a job — buffered or streaming, serial or one thread
//! per run, with or without an injected fault plan — and returns one
//! [`RunReport`] per seed.
//!
//! ```no_run
//! # use pio_mpi::{Runner, RunConfig, Job};
//! # use pio_fs::FsConfig;
//! # let job: Job = todo!();
//! let reports = Runner::new(&job, RunConfig::new(FsConfig::tiny_test(), 0, "exp"))
//!     .seeds(&[1, 2, 3])
//!     .threads(3)
//!     .execute()?;
//! # Ok::<(), pio_mpi::RunError>(())
//! ```

use crate::program::Job;
use crate::world::MpiWorld;
use pio_des::{SimTime, Simulator};
use pio_fault::FaultPlan;
use pio_fs::sim::UtilizationReport;
use pio_fs::{FsConfig, FsSim, FsStats, LockStats};
use pio_trace::{RecordSink, Trace, TraceMeta};

pub use crate::world::MpiConfig;

/// Everything that identifies a run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Platform preset.
    pub fs: FsConfig,
    /// Message-layer cost model.
    pub mpi: MpiConfig,
    /// Master seed — the only source of run-to-run variability.
    pub seed: u64,
    /// Experiment label for the trace metadata.
    pub experiment: String,
    /// Optional fault plan. `None` (and the empty plan) leave the
    /// simulation bit-identical to a build without the fault layer.
    pub fault: Option<FaultPlan>,
}

impl RunConfig {
    /// A run of `experiment` on `fs` with `seed`, default MPI costs and
    /// no faults.
    pub fn new(fs: FsConfig, seed: u64, experiment: impl Into<String>) -> Self {
        RunConfig {
            fs,
            mpi: MpiConfig::default(),
            seed,
            experiment: experiment.into(),
            fault: None,
        }
    }

    /// The same run with a fault plan installed (builder style).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The job failed static validation.
    InvalidJob(String),
    /// The event queue drained with unfinished ranks (e.g. a recv whose
    /// send never happens). Lists `(rank, pc)` of stuck ranks.
    Deadlock(Vec<(u32, usize)>),
    /// The [`Runner`] was configured inconsistently (e.g. a sink with
    /// several seeds).
    Config(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidJob(e) => write!(f, "invalid job: {e}"),
            RunError::Deadlock(stuck) => {
                write!(
                    f,
                    "deadlock: {} ranks stuck (first: {:?})",
                    stuck.len(),
                    stuck.first()
                )
            }
            RunError::Config(e) => write!(f, "invalid runner configuration: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of one seeded run.
#[derive(Debug, PartialEq)]
pub struct RunReport {
    /// The seed this run used.
    pub seed: u64,
    /// Trace metadata (always present, even when records went to a sink).
    pub meta: TraceMeta,
    /// The captured IPM-I/O trace, sorted by start time — `None` when
    /// the run streamed its records into a sink instead of memory.
    pub trace: Option<Trace>,
    /// File-system statistics.
    pub stats: FsStats,
    /// Extent-lock statistics.
    pub lock_stats: LockStats,
    /// Resource-utilization breakdown at run end.
    pub util: UtilizationReport,
    /// Events processed by the engine.
    pub events: u64,
    /// Virtual end time of the run.
    pub end: SimTime,
}

impl RunReport {
    /// Wall-clock of the run in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.end.as_secs_f64()
    }

    /// The buffered trace. Panics if the run streamed into a sink — a
    /// streamed run's records live wherever the sink put them.
    pub fn trace(&self) -> &Trace {
        self.trace
            .as_ref()
            .expect("this run streamed its records into a sink; no buffered trace")
    }

    /// Take ownership of the buffered trace (panics if streamed).
    pub fn into_trace(self) -> Trace {
        self.trace
            .expect("this run streamed its records into a sink; no buffered trace")
    }
}

/// Process-wide default for [`Runner::shards`], as an engine selector
/// for CLI drivers: 0 means "classic engine" (the default), anything
/// else routes new runners through the sharded engine with that many
/// workers. An explicit [`Runner::shards`] call still overrides.
static DEFAULT_SHARDS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Set the process-wide default shard count picked up by every
/// subsequently built [`Runner`] (`None` restores the classic engine).
/// Intended for CLI drivers wiring a `--shards N` flag; the sharded
/// engine is bit-identical at any count, so this changes wall-clock
/// only.
pub fn set_default_shards(n: Option<u32>) {
    DEFAULT_SHARDS.store(n.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
}

fn default_shards() -> Option<u32> {
    match DEFAULT_SHARDS.load(std::sync::atomic::Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Builder for executing a job one or more times.
///
/// * [`Runner::seeds`] — run once per seed (default: the config's seed).
/// * [`Runner::threads`] — worker threads for multi-seed ensembles
///   (runs are independent simulations; results come back in seed
///   order regardless of completion order).
/// * [`Runner::sink`] — stream records into a [`RecordSink`] instead of
///   buffering a trace (constant memory; single seed only).
/// * [`Runner::fault_plan`] — inject a deterministic [`FaultPlan`].
pub struct Runner<'j, 's> {
    job: &'j Job,
    cfg: RunConfig,
    seeds: Vec<u64>,
    threads: usize,
    shards: Option<u32>,
    sink: Option<&'s mut dyn RecordSink>,
}

impl<'j, 's> Runner<'j, 's> {
    /// A runner for `job` under `cfg`, defaulting to one buffered,
    /// serial run with `cfg.seed`.
    pub fn new(job: &'j Job, cfg: RunConfig) -> Self {
        Runner {
            job,
            seeds: vec![cfg.seed],
            cfg,
            threads: 1,
            shards: default_shards(),
            sink: None,
        }
    }

    /// Run each seed on the sharded parallel engine with `n` worker
    /// shards (see the `shard` module). The result is bit-identical for
    /// any `n`, including 1 — shards only change wall-clock time.
    /// Values of 0 or over 1024 are rejected at [`Runner::execute`].
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = Some(n);
        self
    }

    /// Run once per seed — the paper's "ensemble of runs" construction.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Use up to `n` worker threads for multi-seed ensembles (values
    /// below 1 mean serial).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Stream every record into `sink` as the simulated call completes
    /// instead of buffering a trace — the online capture mode (memory
    /// stays constant in run length). Records arrive in completion
    /// order; [`RecordSink::phase_end`] fires at every barrier release
    /// and [`RecordSink::finish`] when the run ends. Streaming is
    /// single-seed and single-threaded.
    pub fn sink(mut self, sink: &'s mut dyn RecordSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Inject `plan` into every run (equivalent to
    /// [`RunConfig::with_fault`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault = Some(plan);
        self
    }

    /// Execute all configured runs, returning one report per seed, in
    /// seed order.
    pub fn execute(mut self) -> Result<Vec<RunReport>, RunError> {
        self.job.validate().map_err(RunError::InvalidJob)?;
        if self.seeds.is_empty() {
            return Err(RunError::Config("no seeds to run".into()));
        }
        if self.sink.is_some() && self.seeds.len() > 1 {
            return Err(RunError::Config(
                "a sink receives exactly one run; use a single seed".into(),
            ));
        }
        if let Some(shards) = self.shards {
            if shards == 0 {
                return Err(RunError::Config("--shards must be at least 1".into()));
            }
            if shards > 1024 {
                return Err(RunError::Config(format!(
                    "--shards {shards} is absurd; use at most 1024"
                )));
            }
            let reports: Result<Vec<RunReport>, RunError> = self
                .seeds
                .iter()
                .map(|&seed| {
                    let cfg = RunConfig {
                        seed,
                        ..self.cfg.clone()
                    };
                    crate::shard::run_sharded(self.job, &cfg, shards)
                })
                .collect();
            let mut reports = reports?;
            if let Some(sink) = self.sink.take() {
                crate::shard::replay_into_sink(&mut reports[0], sink);
            }
            return Ok(reports);
        }
        if let Some(sink) = self.sink.take() {
            let cfg = RunConfig {
                seed: self.seeds[0],
                ..self.cfg.clone()
            };
            return Ok(vec![run_single_streaming(self.job, &cfg, sink)?]);
        }
        if self.threads > 1 && self.seeds.len() > 1 {
            return execute_parallel(self.job, &self.cfg, &self.seeds, self.threads);
        }
        self.seeds
            .iter()
            .map(|&seed| {
                let cfg = RunConfig {
                    seed,
                    ..self.cfg.clone()
                };
                run_single(self.job, &cfg)
            })
            .collect()
    }

    /// Execute a single-seed configuration and unwrap its one report.
    pub fn execute_one(self) -> Result<RunReport, RunError> {
        if self.seeds.len() != 1 {
            return Err(RunError::Config(format!(
                "execute_one needs exactly one seed, got {}",
                self.seeds.len()
            )));
        }
        Ok(self.execute()?.pop().expect("one report"))
    }
}

/// Build the simulator for one run and execute it to completion.
fn build_and_run<'s>(
    job: &Job,
    cfg: &RunConfig,
    sink: Option<&'s mut dyn RecordSink>,
    store_records: bool,
) -> Result<(Simulator<MpiWorld<'s>>, SimTime), RunError> {
    job.validate().map_err(RunError::InvalidJob)?;
    let ranks = job.ranks();
    let nodes = ranks.div_ceil(cfg.fs.tasks_per_node).max(1);
    let mut fs = FsSim::new(cfg.fs.clone(), nodes, cfg.seed);
    for spec in &job.files {
        fs.register_file(spec.shared);
    }
    // Empty plans install nothing, so `FaultPlan::new()` is exactly as
    // inert as `None`.
    let plan = cfg.fault.as_ref().filter(|p| !p.is_empty());
    if let Some(plan) = plan {
        fs.set_fault(Box::new(plan.fs_injector(cfg.seed)));
    }
    let meta = TraceMeta {
        experiment: cfg.experiment.clone(),
        platform: cfg.fs.name.clone(),
        ranks,
        seed: cfg.seed,
    };
    let mut world = MpiWorld::new(job.clone(), fs, cfg.mpi.clone(), cfg.seed, meta);
    if let Some(plan) = plan {
        world.set_fault(Box::new(plan.mpi_injector(cfg.seed)));
    }
    if let Some(sink) = sink {
        world.set_sink(sink);
    }
    world.set_store_records(store_records);
    let initial = world.initial_events();
    let mut sim = Simulator::new(world);
    for (t, e) in initial {
        sim.schedule(t, e);
    }
    let end = sim.run();
    if sim.world.finished_ranks() != ranks {
        return Err(RunError::Deadlock(sim.world.stuck_ranks()));
    }
    Ok((sim, end))
}

/// One buffered run.
fn run_single(job: &Job, cfg: &RunConfig) -> Result<RunReport, RunError> {
    let (mut sim, end) = build_and_run(job, cfg, None, true)?;
    let mut trace = std::mem::take(&mut sim.world.trace);
    trace.sort_by_start();
    debug_assert_eq!(trace.validate(), Ok(()));
    Ok(RunReport {
        seed: cfg.seed,
        meta: trace.meta.clone(),
        stats: sim.world.fs.stats().clone(),
        lock_stats: sim.world.fs.lock_stats(),
        util: sim.world.fs.utilization(end),
        trace: Some(trace),
        events: sim.processed(),
        end,
    })
}

/// One streaming run: records go to `sink`, the report carries no trace.
fn run_single_streaming(
    job: &Job,
    cfg: &RunConfig,
    sink: &mut dyn RecordSink,
) -> Result<RunReport, RunError> {
    let meta = TraceMeta {
        experiment: cfg.experiment.clone(),
        platform: cfg.fs.name.clone(),
        ranks: job.ranks(),
        seed: cfg.seed,
    };
    let (sim, end) = build_and_run(job, cfg, Some(&mut *sink), false)?;
    let final_phase = sim.world.phase();
    let report = RunReport {
        seed: cfg.seed,
        meta,
        trace: None,
        stats: sim.world.fs.stats().clone(),
        lock_stats: sim.world.fs.lock_stats(),
        util: sim.world.fs.utilization(end),
        events: sim.processed(),
        end,
    };
    drop(sim);
    // The tail of the program after the last barrier is a final,
    // implicitly closed phase.
    sink.phase_end(final_phase);
    sink.finish();
    Ok(report)
}

/// Multi-seed execution over up to `threads` OS threads (runs are
/// independent simulations, so the ensemble parallelizes perfectly).
/// Reports come back in seed order regardless of completion order.
///
/// Work distribution is a **work-stealing loop**: workers claim the next
/// unstarted seed from a shared atomic counter, so a slow run (a faulted
/// straggler cell, a larger scale) never idles the other threads the way
/// static chunking does. Determinism is untouched — which thread runs a
/// seed has no effect on that run (each simulation owns all its state
/// and RNG streams), and reports are placed by seed index, so the result
/// is bit-identical for any thread count and any interleaving.
fn execute_parallel(
    job: &Job,
    base: &RunConfig,
    seeds: &[u64],
    threads: usize,
) -> Result<Vec<RunReport>, RunError> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let workers = threads.min(seeds.len()).max(1);
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Result<RunReport, RunError>)>> =
        crossbeam::thread::scope(|scope| {
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cfg = base.clone();
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&seed) = seeds.get(i) else { break };
                            local.push((
                                i,
                                run_single(
                                    job,
                                    &RunConfig {
                                        seed,
                                        ..cfg.clone()
                                    },
                                ),
                            ));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("run thread"))
                .collect()
        })
        .expect("ensemble scope");

    // Place by claimed index: seed order, independent of completion order.
    let mut slots: Vec<Option<Result<RunReport, RunError>>> =
        (0..seeds.len()).map(|_| None).collect();
    for (i, report) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "seed {i} claimed twice");
        slots[i] = Some(report);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every seed claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FileSpec, Op, ProgramBuilder};
    use pio_trace::CallKind;

    const MB: u64 = 1 << 20;

    fn simple_job(ranks: u32, write_mb: u64) -> Job {
        let programs = (0..ranks)
            .map(|r| {
                ProgramBuilder::new()
                    .open(0)
                    .seek(0, r as u64 * 512 * MB)
                    .write(0, write_mb * MB)
                    .barrier()
                    .flush(0)
                    .close(0)
                    .build()
            })
            .collect();
        Job {
            programs,
            files: vec![FileSpec { shared: true }],
        }
    }

    fn cfg(seed: u64) -> RunConfig {
        RunConfig::new(FsConfig::tiny_test(), seed, "unit")
    }

    fn go(job: &Job, config: RunConfig) -> RunReport {
        Runner::new(job, config).execute_one().unwrap()
    }

    #[test]
    fn simple_job_runs_to_completion() {
        let job = simple_job(8, 4);
        let res = go(&job, cfg(1));
        assert_eq!(res.trace().meta.ranks, 8);
        // 8 ranks × (open, seek, write, barrier, flush, close) = 48 records.
        assert_eq!(res.trace().records.len(), 48);
        assert_eq!(res.stats.bytes_written, 8 * 4 * MB);
        assert!(res.end > SimTime::ZERO);
        res.trace().validate().unwrap();
    }

    #[test]
    fn trace_has_correct_phases() {
        let job = simple_job(4, 2);
        let res = go(&job, cfg(2));
        // Ops before the barrier are phase 0; flush/close are phase 1.
        for r in &res.trace().records {
            match r.call {
                CallKind::Open | CallKind::Seek | CallKind::Write | CallKind::Barrier => {
                    assert_eq!(r.phase, 0, "{r:?}")
                }
                CallKind::Flush | CallKind::Close => assert_eq!(r.phase, 1, "{r:?}"),
                _ => {}
            }
        }
        assert_eq!(res.trace().phase_count(), 2);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let job = simple_job(8, 4);
        let a = go(&job, cfg(7));
        let b = go(&job, cfg(7));
        assert_eq!(a.trace().records, b.trace().records);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn different_seeds_differ_but_same_shape() {
        let job = simple_job(8, 4);
        let a = go(&job, cfg(1));
        let b = go(&job, cfg(2));
        assert_ne!(a.trace().records, b.trace().records);
        assert_eq!(a.trace().records.len(), b.trace().records.len());
        // Total bytes identical (the experiment, not the run, fixes them).
        assert_eq!(a.stats.bytes_written, b.stats.bytes_written);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let job = simple_job(4, 2);
        let res = go(&job, cfg(3));
        // All barrier records end at the same instant.
        let ends: Vec<u64> = res
            .trace()
            .of_kind(CallKind::Barrier)
            .map(|r| r.end_ns)
            .collect();
        assert_eq!(ends.len(), 4);
        assert!(ends.windows(2).all(|w| w[0] == w[1]));
        // And that instant is ≥ every pre-barrier write end.
        let max_write = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.end_ns)
            .max()
            .unwrap();
        assert!(ends[0] >= max_write);
    }

    #[test]
    fn send_recv_pair_works() {
        let p0 = ProgramBuilder::new().send(1, 10 * MB).build();
        let p1 = ProgramBuilder::new().recv(0).build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        let res = go(&job, cfg(4));
        let send: Vec<_> = res.trace().of_kind(CallKind::Send).collect();
        let recv: Vec<_> = res.trace().of_kind(CallKind::Recv).collect();
        assert_eq!(send.len(), 1);
        assert_eq!(recv.len(), 1);
        // Recv cannot complete before the send does.
        assert!(recv[0].end_ns >= send[0].end_ns);
        assert_eq!(send[0].bytes, 10 * MB);
    }

    #[test]
    fn recv_before_send_blocks_until_send() {
        // Rank 1 computes first, so its send lands after rank 0's recv.
        let p0 = ProgramBuilder::new().recv(1).build();
        let p1 = ProgramBuilder::new()
            .compute(pio_des::SimSpan::from_secs(1))
            .send(0, 1024)
            .build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        let res = go(&job, cfg(5));
        let binding = res.trace();
        let recv = binding.of_kind(CallKind::Recv).next().unwrap();
        assert!(recv.secs() >= 0.99, "recv must wait for the send: {recv:?}");
    }

    #[test]
    fn unmatched_recv_is_invalid_job() {
        let p0 = ProgramBuilder::new().recv(1).build();
        let p1 = ProgramBuilder::new().build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        assert!(matches!(
            Runner::new(&job, cfg(6)).execute(),
            Err(RunError::InvalidJob(_))
        ));
    }

    #[test]
    fn utilization_report_accounts_for_the_run() {
        let job = simple_job(8, 4);
        let res = go(&job, cfg(31));
        let u = &res.util;
        assert!(u.horizon_s > 0.0);
        // Bytes served by OSTs equal bytes written (all drained by flush).
        assert_eq!(u.ost_bytes.iter().sum::<u64>(), res.stats.bytes_written);
        assert!(u.fabric_utilization() > 0.0 && u.fabric_utilization() <= 1.0);
        assert!(u.mean_ost_utilization() > 0.0);
        assert!(u.ost_imbalance() >= 1.0);
        // Some node buffered data at some point.
        assert!(u.node_dirty_peak.iter().any(|&p| p > 0));
    }

    #[test]
    fn streaming_run_matches_buffered_run() {
        let job = simple_job(8, 4);
        let buffered = go(&job, cfg(21));

        // Collect through the streaming path into an in-memory trace.
        let mut collected = Trace::new(buffered.trace().meta.clone());
        let res = Runner::new(&job, cfg(21))
            .sink(&mut collected)
            .execute_one()
            .unwrap();
        collected.sort_by_start();
        assert_eq!(collected.records, buffered.trace().records);
        assert_eq!(res.meta, buffered.trace().meta);
        assert!(res.trace.is_none(), "streamed run buffers nothing");
        assert_eq!(res.end, buffered.end);
        assert_eq!(res.stats.bytes_written, buffered.stats.bytes_written);
    }

    #[test]
    fn streaming_capture_to_ptb_round_trips() {
        // Capture straight to the binary trace format — no in-memory
        // Trace — then decode and compare with the buffered run.
        let job = simple_job(8, 4);
        let buffered = go(&job, cfg(21));

        let mut enc = pio_trace::PtbWriter::new(Vec::new(), &buffered.trace().meta).unwrap();
        Runner::new(&job, cfg(21))
            .sink(&mut enc)
            .execute_one()
            .unwrap();
        assert!(enc.error().is_none(), "{:?}", enc.error());
        assert_eq!(
            enc.records_written() as usize,
            buffered.trace().records.len()
        );
        let bytes = enc.into_inner().unwrap();

        let mut back = pio_trace::ptb::read_ptb(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(back.meta, buffered.trace().meta);
        back.sort_by_start();
        assert_eq!(back.records, buffered.trace().records);
    }

    #[test]
    fn streaming_run_fires_phase_boundaries() {
        #[derive(Default)]
        struct Log {
            pushes: u64,
            phase_ends: Vec<u32>,
            finished: bool,
        }
        impl pio_trace::RecordSink for Log {
            fn push(&mut self, _r: &pio_trace::Record) {
                self.pushes += 1;
            }
            fn phase_end(&mut self, phase: u32) {
                self.phase_ends.push(phase);
            }
            fn finish(&mut self) {
                self.finished = true;
            }
        }
        let job = simple_job(4, 2);
        let mut log = Log::default();
        Runner::new(&job, cfg(22))
            .sink(&mut log)
            .execute_one()
            .unwrap();
        // 4 ranks × 6 ops = 24 records; one barrier then the final tail.
        assert_eq!(log.pushes, 24);
        assert_eq!(log.phase_ends, vec![0, 1]);
        assert!(log.finished);
    }

    #[test]
    fn parallel_ensemble_matches_serial() {
        let job = simple_job(4, 2);
        let seeds = [5u64, 6, 7];
        let serial = Runner::new(&job, cfg(0)).seeds(&seeds).execute().unwrap();
        let parallel = Runner::new(&job, cfg(0))
            .seeds(&seeds)
            .threads(3)
            .execute()
            .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.seed, b.seed, "seed order preserved");
            assert_eq!(
                a.trace().records,
                b.trace().records,
                "parallel must be bit-identical"
            );
        }
    }

    #[test]
    fn ensemble_runs_all_seeds() {
        let job = simple_job(4, 1);
        let reports = Runner::new(&job, cfg(0))
            .seeds(&[1, 2, 3])
            .execute()
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].meta.seed, 1);
        assert_eq!(reports[2].meta.seed, 3);
    }

    #[test]
    fn sink_with_many_seeds_is_a_config_error() {
        let job = simple_job(2, 1);
        let mut collected = Trace::new(TraceMeta {
            experiment: "x".into(),
            platform: "y".into(),
            ranks: 2,
            seed: 0,
        });
        let err = Runner::new(&job, cfg(1))
            .seeds(&[1, 2])
            .sink(&mut collected)
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        let err = Runner::new(&job, cfg(1)).seeds(&[]).execute().unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        let err = Runner::new(&job, cfg(1))
            .seeds(&[1, 2])
            .execute_one()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
    }

    #[test]
    fn compute_op_takes_time_and_is_traced() {
        let p = ProgramBuilder::new()
            .compute(pio_des::SimSpan::from_secs(2))
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![],
        };
        let res = go(&job, cfg(8));
        let binding = res.trace();
        let c = binding.of_kind(CallKind::Compute).next().unwrap();
        assert!((c.secs() - 2.0).abs() < 1e-9);
        assert!((res.wall_secs() - 2.0).abs() < 1e-2);
    }

    #[test]
    fn sequential_writes_advance_cursor() {
        let p = ProgramBuilder::new()
            .open(0)
            .write(0, MB)
            .write(0, MB)
            .write(0, MB)
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = go(&job, cfg(9));
        let offsets: Vec<u64> = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.offset)
            .collect();
        assert_eq!(offsets, vec![0, MB, 2 * MB]);
    }

    #[test]
    fn read_after_write_with_flush() {
        let p = ProgramBuilder::new()
            .open(0)
            .write(0, 2 * MB)
            .flush(0)
            .seek(0, 0)
            .read(0, 2 * MB)
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = go(&job, cfg(10));
        assert_eq!(res.stats.bytes_read, 2 * MB);
        assert_eq!(res.stats.bytes_written, 2 * MB);
        assert_eq!(res.stats.flushes, 1);
        // Program order is preserved in the trace.
        let kinds: Vec<CallKind> = res.trace().records.iter().map(|r| r.call).collect();
        let w = kinds.iter().position(|&k| k == CallKind::Write).unwrap();
        let f = kinds.iter().position(|&k| k == CallKind::Flush).unwrap();
        let r = kinds.iter().position(|&k| k == CallKind::Read).unwrap();
        assert!(w < f && f < r);
    }

    #[test]
    fn many_ranks_over_many_nodes() {
        // 32 ranks on 8 nodes (tiny config: 4 tasks/node).
        let job = simple_job(32, 1);
        let res = go(&job, cfg(11));
        assert_eq!(res.trace().meta.ranks, 32);
        assert_eq!(res.stats.bytes_written, 32 * MB);
        assert!(res.events > 0);
    }

    #[test]
    fn op_helpers_in_running_context() {
        // WriteAt does not move the cursor.
        let p = ProgramBuilder::new()
            .open(0)
            .write_at(0, 10 * MB, MB)
            .write(0, MB) // cursor still 0
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = go(&job, cfg(12));
        let offsets: Vec<u64> = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.offset)
            .collect();
        assert_eq!(offsets, vec![10 * MB, 0]);
        assert!(matches!(job.programs[0].ops[1], Op::WriteAt { .. }));
    }
}
