//! One-call job execution: job + platform + seed → trace.

use crate::program::Job;
use crate::world::MpiWorld;
use pio_des::{SimTime, Simulator};
use pio_fs::sim::UtilizationReport;
use pio_fs::{FsConfig, FsSim, FsStats};
use pio_trace::{RecordSink, Trace, TraceMeta};

pub use crate::world::MpiConfig;

/// Everything that identifies a run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Platform preset.
    pub fs: FsConfig,
    /// Message-layer cost model.
    pub mpi: MpiConfig,
    /// Master seed — the only source of run-to-run variability.
    pub seed: u64,
    /// Experiment label for the trace metadata.
    pub experiment: String,
}

impl RunConfig {
    /// A run of `experiment` on `fs` with `seed` and default MPI costs.
    pub fn new(fs: FsConfig, seed: u64, experiment: impl Into<String>) -> Self {
        RunConfig {
            fs,
            mpi: MpiConfig::default(),
            seed,
            experiment: experiment.into(),
        }
    }
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The job failed static validation.
    InvalidJob(String),
    /// The event queue drained with unfinished ranks (e.g. a recv whose
    /// send never happens). Lists `(rank, pc)` of stuck ranks.
    Deadlock(Vec<(u32, usize)>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidJob(e) => write!(f, "invalid job: {e}"),
            RunError::Deadlock(stuck) => {
                write!(
                    f,
                    "deadlock: {} ranks stuck (first: {:?})",
                    stuck.len(),
                    stuck.first()
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of a run.
#[derive(Debug)]
pub struct RunResult {
    /// The captured IPM-I/O trace.
    pub trace: Trace,
    /// File-system statistics.
    pub stats: FsStats,
    /// Lock statistics: (grants, conflicts, rmws).
    pub lock_stats: (u64, u64, u64),
    /// Resource-utilization breakdown at run end.
    pub util: UtilizationReport,
    /// Events processed by the engine.
    pub events: u64,
    /// Virtual end time of the run.
    pub end: SimTime,
}

impl RunResult {
    /// Wall-clock of the run in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.end.as_secs_f64()
    }
}

/// The outcome of a streaming run: everything in [`RunResult`] except
/// the trace, which went to the caller's sink instead of memory.
#[derive(Debug)]
pub struct StreamRunResult {
    /// Trace metadata (the records themselves went to the sink).
    pub meta: TraceMeta,
    /// File-system statistics.
    pub stats: FsStats,
    /// Lock statistics: (grants, conflicts, rmws).
    pub lock_stats: (u64, u64, u64),
    /// Resource-utilization breakdown at run end.
    pub util: UtilizationReport,
    /// Events processed by the engine.
    pub events: u64,
    /// Virtual end time of the run.
    pub end: SimTime,
}

/// Build the simulator for one run and execute it to completion.
fn execute<'s>(
    job: &Job,
    cfg: &RunConfig,
    sink: Option<&'s mut dyn RecordSink>,
    store_records: bool,
) -> Result<(Simulator<MpiWorld<'s>>, SimTime), RunError> {
    job.validate().map_err(RunError::InvalidJob)?;
    let ranks = job.ranks();
    let nodes = ranks.div_ceil(cfg.fs.tasks_per_node).max(1);
    let mut fs = FsSim::new(cfg.fs.clone(), nodes, cfg.seed);
    for spec in &job.files {
        fs.register_file(spec.shared);
    }
    let meta = TraceMeta {
        experiment: cfg.experiment.clone(),
        platform: cfg.fs.name.clone(),
        ranks,
        seed: cfg.seed,
    };
    let mut world = MpiWorld::new(job.clone(), fs, cfg.mpi.clone(), cfg.seed, meta);
    if let Some(sink) = sink {
        world.set_sink(sink);
    }
    world.set_store_records(store_records);
    let initial = world.initial_events();
    let mut sim = Simulator::new(world);
    for (t, e) in initial {
        sim.schedule(t, e);
    }
    let end = sim.run();
    if sim.world.finished_ranks() != ranks {
        return Err(RunError::Deadlock(sim.world.stuck_ranks()));
    }
    Ok((sim, end))
}

/// Execute `job` under `cfg`.
pub fn run(job: &Job, cfg: &RunConfig) -> Result<RunResult, RunError> {
    let (mut sim, end) = execute(job, cfg, None, true)?;
    let mut trace = std::mem::take(&mut sim.world.trace);
    trace.sort_by_start();
    debug_assert_eq!(trace.validate(), Ok(()));
    Ok(RunResult {
        stats: sim.world.fs.stats().clone(),
        lock_stats: sim.world.fs.lock_stats(),
        util: sim.world.fs.utilization(end),
        trace,
        events: sim.processed(),
        end,
    })
}

/// Execute `job` under `cfg`, streaming every record into `sink` as the
/// simulated call completes instead of buffering a trace — the online
/// capture mode (memory stays constant in run length). Records arrive in
/// completion order; [`RecordSink::phase_end`] fires at every barrier
/// release, and [`RecordSink::finish`] when the run ends.
pub fn run_streaming(
    job: &Job,
    cfg: &RunConfig,
    sink: &mut dyn RecordSink,
) -> Result<StreamRunResult, RunError> {
    let meta = TraceMeta {
        experiment: cfg.experiment.clone(),
        platform: cfg.fs.name.clone(),
        ranks: job.ranks(),
        seed: cfg.seed,
    };
    let (sim, end) = execute(job, cfg, Some(&mut *sink), false)?;
    let final_phase = sim.world.phase();
    let result = StreamRunResult {
        meta,
        stats: sim.world.fs.stats().clone(),
        lock_stats: sim.world.fs.lock_stats(),
        util: sim.world.fs.utilization(end),
        events: sim.processed(),
        end,
    };
    drop(sim);
    // The tail of the program after the last barrier is a final,
    // implicitly closed phase.
    sink.phase_end(final_phase);
    sink.finish();
    Ok(result)
}

/// Run the same experiment with several seeds, returning one trace per
/// run — the paper's "ensemble of runs" construction.
pub fn run_ensemble(job: &Job, base: &RunConfig, seeds: &[u64]) -> Result<Vec<Trace>, RunError> {
    seeds
        .iter()
        .map(|&seed| {
            let cfg = RunConfig {
                seed,
                ..base.clone()
            };
            run(job, &cfg).map(|r| r.trace)
        })
        .collect()
}

/// [`run_ensemble`] with one OS thread per run (runs are independent
/// simulations, so the ensemble parallelizes perfectly). Results come
/// back in seed order regardless of completion order.
pub fn run_ensemble_parallel(
    job: &Job,
    base: &RunConfig,
    seeds: &[u64],
) -> Result<Vec<Trace>, RunError> {
    job.validate().map_err(RunError::InvalidJob)?;
    let results: Vec<Result<Trace, RunError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let cfg = RunConfig {
                    seed,
                    ..base.clone()
                };
                scope.spawn(move |_| run(job, &cfg).map(|r| r.trace))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run thread"))
            .collect()
    })
    .expect("ensemble scope");
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FileSpec, Op, ProgramBuilder};
    use pio_trace::CallKind;

    const MB: u64 = 1 << 20;

    fn simple_job(ranks: u32, write_mb: u64) -> Job {
        let programs = (0..ranks)
            .map(|r| {
                ProgramBuilder::new()
                    .open(0)
                    .seek(0, r as u64 * 512 * MB)
                    .write(0, write_mb * MB)
                    .barrier()
                    .flush(0)
                    .close(0)
                    .build()
            })
            .collect();
        Job {
            programs,
            files: vec![FileSpec { shared: true }],
        }
    }

    fn cfg(seed: u64) -> RunConfig {
        RunConfig::new(FsConfig::tiny_test(), seed, "unit")
    }

    #[test]
    fn simple_job_runs_to_completion() {
        let job = simple_job(8, 4);
        let res = run(&job, &cfg(1)).unwrap();
        assert_eq!(res.trace.meta.ranks, 8);
        // 8 ranks × (open, seek, write, barrier, flush, close) = 48 records.
        assert_eq!(res.trace.records.len(), 48);
        assert_eq!(res.stats.bytes_written, 8 * 4 * MB);
        assert!(res.end > SimTime::ZERO);
        res.trace.validate().unwrap();
    }

    #[test]
    fn trace_has_correct_phases() {
        let job = simple_job(4, 2);
        let res = run(&job, &cfg(2)).unwrap();
        // Ops before the barrier are phase 0; flush/close are phase 1.
        for r in &res.trace.records {
            match r.call {
                CallKind::Open | CallKind::Seek | CallKind::Write | CallKind::Barrier => {
                    assert_eq!(r.phase, 0, "{r:?}")
                }
                CallKind::Flush | CallKind::Close => assert_eq!(r.phase, 1, "{r:?}"),
                _ => {}
            }
        }
        assert_eq!(res.trace.phase_count(), 2);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let job = simple_job(8, 4);
        let a = run(&job, &cfg(7)).unwrap();
        let b = run(&job, &cfg(7)).unwrap();
        assert_eq!(a.trace.records, b.trace.records);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn different_seeds_differ_but_same_shape() {
        let job = simple_job(8, 4);
        let a = run(&job, &cfg(1)).unwrap();
        let b = run(&job, &cfg(2)).unwrap();
        assert_ne!(a.trace.records, b.trace.records);
        assert_eq!(a.trace.records.len(), b.trace.records.len());
        // Total bytes identical (the experiment, not the run, fixes them).
        assert_eq!(a.stats.bytes_written, b.stats.bytes_written);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let job = simple_job(4, 2);
        let res = run(&job, &cfg(3)).unwrap();
        // All barrier records end at the same instant.
        let ends: Vec<u64> = res
            .trace
            .of_kind(CallKind::Barrier)
            .map(|r| r.end_ns)
            .collect();
        assert_eq!(ends.len(), 4);
        assert!(ends.windows(2).all(|w| w[0] == w[1]));
        // And that instant is ≥ every pre-barrier write end.
        let max_write = res
            .trace
            .of_kind(CallKind::Write)
            .map(|r| r.end_ns)
            .max()
            .unwrap();
        assert!(ends[0] >= max_write);
    }

    #[test]
    fn send_recv_pair_works() {
        let p0 = ProgramBuilder::new().send(1, 10 * MB).build();
        let p1 = ProgramBuilder::new().recv(0).build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        let res = run(&job, &cfg(4)).unwrap();
        let send: Vec<_> = res.trace.of_kind(CallKind::Send).collect();
        let recv: Vec<_> = res.trace.of_kind(CallKind::Recv).collect();
        assert_eq!(send.len(), 1);
        assert_eq!(recv.len(), 1);
        // Recv cannot complete before the send does.
        assert!(recv[0].end_ns >= send[0].end_ns);
        assert_eq!(send[0].bytes, 10 * MB);
    }

    #[test]
    fn recv_before_send_blocks_until_send() {
        // Rank 1 computes first, so its send lands after rank 0's recv.
        let p0 = ProgramBuilder::new().recv(1).build();
        let p1 = ProgramBuilder::new()
            .compute(pio_des::SimSpan::from_secs(1))
            .send(0, 1024)
            .build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        let res = run(&job, &cfg(5)).unwrap();
        let recv = res.trace.of_kind(CallKind::Recv).next().unwrap();
        assert!(recv.secs() >= 0.99, "recv must wait for the send: {recv:?}");
    }

    #[test]
    fn unmatched_recv_is_invalid_job() {
        let p0 = ProgramBuilder::new().recv(1).build();
        let p1 = ProgramBuilder::new().build();
        let job = Job {
            programs: vec![p0, p1],
            files: vec![],
        };
        assert!(matches!(run(&job, &cfg(6)), Err(RunError::InvalidJob(_))));
    }

    #[test]
    fn utilization_report_accounts_for_the_run() {
        let job = simple_job(8, 4);
        let res = run(&job, &cfg(31)).unwrap();
        let u = &res.util;
        assert!(u.horizon_s > 0.0);
        // Bytes served by OSTs equal bytes written (all drained by flush).
        assert_eq!(u.ost_bytes.iter().sum::<u64>(), res.stats.bytes_written);
        assert!(u.fabric_utilization() > 0.0 && u.fabric_utilization() <= 1.0);
        assert!(u.mean_ost_utilization() > 0.0);
        assert!(u.ost_imbalance() >= 1.0);
        // Some node buffered data at some point.
        assert!(u.node_dirty_peak.iter().any(|&p| p > 0));
    }

    #[test]
    fn streaming_run_matches_buffered_run() {
        let job = simple_job(8, 4);
        let config = cfg(21);
        let buffered = run(&job, &config).unwrap();

        // Collect through the streaming path into an in-memory trace.
        let mut collected = Trace::new(buffered.trace.meta.clone());
        let res = run_streaming(&job, &config, &mut collected).unwrap();
        collected.sort_by_start();
        assert_eq!(collected.records, buffered.trace.records);
        assert_eq!(res.meta, buffered.trace.meta);
        assert_eq!(res.end, buffered.end);
        assert_eq!(res.stats.bytes_written, buffered.stats.bytes_written);
    }

    #[test]
    fn streaming_run_fires_phase_boundaries() {
        #[derive(Default)]
        struct Log {
            pushes: u64,
            phase_ends: Vec<u32>,
            finished: bool,
        }
        impl pio_trace::RecordSink for Log {
            fn push(&mut self, _r: &pio_trace::Record) {
                self.pushes += 1;
            }
            fn phase_end(&mut self, phase: u32) {
                self.phase_ends.push(phase);
            }
            fn finish(&mut self) {
                self.finished = true;
            }
        }
        let job = simple_job(4, 2);
        let mut log = Log::default();
        run_streaming(&job, &cfg(22), &mut log).unwrap();
        // 4 ranks × 6 ops = 24 records; one barrier then the final tail.
        assert_eq!(log.pushes, 24);
        assert_eq!(log.phase_ends, vec![0, 1]);
        assert!(log.finished);
    }

    #[test]
    fn parallel_ensemble_matches_serial() {
        let job = simple_job(4, 2);
        let base = cfg(0);
        let seeds = [5u64, 6, 7];
        let serial = run_ensemble(&job, &base, &seeds).unwrap();
        let parallel = run_ensemble_parallel(&job, &base, &seeds).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.records, b.records, "parallel must be bit-identical");
        }
    }

    #[test]
    fn ensemble_runs_all_seeds() {
        let job = simple_job(4, 1);
        let traces = run_ensemble(&job, &cfg(0), &[1, 2, 3]).unwrap();
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].meta.seed, 1);
        assert_eq!(traces[2].meta.seed, 3);
    }

    #[test]
    fn compute_op_takes_time_and_is_traced() {
        let p = ProgramBuilder::new()
            .compute(pio_des::SimSpan::from_secs(2))
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![],
        };
        let res = run(&job, &cfg(8)).unwrap();
        let c = res.trace.of_kind(CallKind::Compute).next().unwrap();
        assert!((c.secs() - 2.0).abs() < 1e-9);
        assert!((res.wall_secs() - 2.0).abs() < 1e-2);
    }

    #[test]
    fn sequential_writes_advance_cursor() {
        let p = ProgramBuilder::new()
            .open(0)
            .write(0, MB)
            .write(0, MB)
            .write(0, MB)
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = run(&job, &cfg(9)).unwrap();
        let offsets: Vec<u64> = res
            .trace
            .of_kind(CallKind::Write)
            .map(|r| r.offset)
            .collect();
        assert_eq!(offsets, vec![0, MB, 2 * MB]);
    }

    #[test]
    fn read_after_write_with_flush() {
        let p = ProgramBuilder::new()
            .open(0)
            .write(0, 2 * MB)
            .flush(0)
            .seek(0, 0)
            .read(0, 2 * MB)
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = run(&job, &cfg(10)).unwrap();
        assert_eq!(res.stats.bytes_read, 2 * MB);
        assert_eq!(res.stats.bytes_written, 2 * MB);
        assert_eq!(res.stats.flushes, 1);
        // Program order is preserved in the trace.
        let kinds: Vec<CallKind> = res.trace.records.iter().map(|r| r.call).collect();
        let w = kinds.iter().position(|&k| k == CallKind::Write).unwrap();
        let f = kinds.iter().position(|&k| k == CallKind::Flush).unwrap();
        let r = kinds.iter().position(|&k| k == CallKind::Read).unwrap();
        assert!(w < f && f < r);
    }

    #[test]
    fn many_ranks_over_many_nodes() {
        // 32 ranks on 8 nodes (tiny config: 4 tasks/node).
        let job = simple_job(32, 1);
        let res = run(&job, &cfg(11)).unwrap();
        assert_eq!(res.trace.meta.ranks, 32);
        assert_eq!(res.stats.bytes_written, 32 * MB);
        assert!(res.events > 0);
    }

    #[test]
    fn op_helpers_in_running_context() {
        // WriteAt does not move the cursor.
        let p = ProgramBuilder::new()
            .open(0)
            .write_at(0, 10 * MB, MB)
            .write(0, MB) // cursor still 0
            .close(0)
            .build();
        let job = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        let res = run(&job, &cfg(12)).unwrap();
        let offsets: Vec<u64> = res
            .trace
            .of_kind(CallKind::Write)
            .map(|r| r.offset)
            .collect();
        assert_eq!(offsets, vec![10 * MB, 0]);
        assert!(matches!(job.programs[0].ops[1], Op::WriteAt { .. }));
    }
}
