//! The execution world: ranks stepping through their programs in virtual
//! time, barriers, point-to-point messages, and IPM-I/O trace capture.

use crate::program::{Job, Op};
use pio_des::{FxHashMap, Scheduler, SimRng, SimSpan, SimTime, World};
use pio_fs::fault::FaultInjector;
use pio_fs::sim::FsOut;
use pio_fs::{FsEvent, FsNotify, FsSim, IoKind, IoReq};
use pio_trace::{CallKind, FdTable, Record, RecordSink, Trace, TraceMeta};
use std::collections::VecDeque;

/// MPI message-layer cost model (the fabric's message path is far faster
/// than its I/O path; modeled as latency + bandwidth without queueing).
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Point-to-point bandwidth (B/s).
    pub bw: f64,
    /// Per-message latency (s).
    pub latency: f64,
    /// Barrier exit skew: ranks resume within `[0, jitter)` seconds after
    /// a barrier releases (also randomizes node token order, matching the
    /// paper's observation that no rank is consistently slow or fast).
    pub barrier_jitter: f64,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            bw: 2e9,
            latency: 5e-6,
            barrier_jitter: 200e-6,
        }
    }
}

/// Events of the execution world.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// File-system internal event.
    Fs(FsEvent),
    /// Rank resumes executing its program.
    Start(u32),
    /// Rank finishes a compute interval.
    ComputeDone(u32),
}

#[derive(Debug, Clone, Copy)]
struct CurOp {
    call: CallKind,
    fd: i32,
    offset: u64,
    bytes: u64,
    /// For `Open`: the job-local file to assign an fd for on completion.
    open_file: Option<u32>,
}

struct RankState {
    pc: usize,
    node: u32,
    fdt: FdTable,
    op_start: SimTime,
    cur: Option<CurOp>,
    finished: bool,
}

#[derive(Default)]
struct Channel {
    /// Completion times of sends not yet received.
    avail: VecDeque<SimTime>,
    /// A receiver blocked on this channel (rank, recv-issue time).
    waiting: Option<(u32, SimTime)>,
}

/// The simulation world for one job run.
///
/// The lifetime `'s` is the borrow of an optional streaming
/// [`RecordSink`]; worlds without one (the buffering path) are
/// `MpiWorld<'static>`.
pub struct MpiWorld<'s> {
    /// The file-system model (public for post-run inspection).
    pub fs: FsSim,
    /// The captured trace (public for post-run extraction).
    pub trace: Trace,
    /// Streaming capture path: records are pushed here as calls complete,
    /// and `phase_end` fires at every barrier release.
    sink: Option<&'s mut dyn RecordSink>,
    /// Whether records are also buffered into `trace` (disabled for
    /// constant-memory streaming runs).
    store_records: bool,
    job: Job,
    ranks: Vec<RankState>,
    phase: u32,
    barrier_arrivals: Vec<Option<SimTime>>,
    arrived: u32,
    channels: FxHashMap<(u32, u32), Channel>,
    mpi: MpiConfig,
    rng: SimRng,
    finished: u32,
    fsout: FsOut,
    /// Optional message-layer fault hooks (drop-with-retry delays on
    /// point-to-point sends). `None` costs nothing — no hook calls, no
    /// RNG draws — so fault-free runs are bit-identical to a build
    /// without the fault layer.
    fault: Option<Box<dyn FaultInjector>>,
    /// Cached [`FaultInjector::expiry`] horizon (nanoseconds); hook
    /// dispatch is skipped at or after it.
    fault_expiry: u64,
}

impl<'s> MpiWorld<'s> {
    /// Build the world; `fs` must already have the job's files registered
    /// (in order, so job file index == fs file id).
    pub fn new(job: Job, fs: FsSim, mpi: MpiConfig, seed: u64, meta: TraceMeta) -> Self {
        let n = job.ranks() as usize;
        let tasks_per_node = fs.config().tasks_per_node;
        let ranks = (0..n)
            .map(|r| RankState {
                pc: 0,
                node: r as u32 / tasks_per_node,
                fdt: FdTable::new(),
                op_start: SimTime::ZERO,
                cur: None,
                finished: false,
            })
            .collect();
        MpiWorld {
            fs,
            trace: Trace::new(meta),
            sink: None,
            store_records: true,
            barrier_arrivals: vec![None; n],
            job,
            ranks,
            phase: 0,
            arrived: 0,
            channels: FxHashMap::default(),
            mpi,
            rng: SimRng::stream(seed, 0xA1),
            finished: 0,
            fsout: FsOut::new(),
            fault: None,
            fault_expiry: u64::MAX,
        }
    }

    /// Install message-layer fault hooks (see [`pio_fs::fault`]). A
    /// dropped message delays delivery by the injector's bounded
    /// retransmit wait, so faults surface as right-tail send/recv
    /// latency rather than deadlocks.
    pub fn set_fault(&mut self, fault: Box<dyn FaultInjector>) {
        self.fault_expiry = fault.expiry().nanos();
        self.fault = Some(fault);
    }

    /// Attach a streaming sink: every record is pushed as the call
    /// completes (completion order, not start order), and
    /// [`RecordSink::phase_end`] fires at each barrier release.
    pub fn set_sink(&mut self, sink: &'s mut dyn RecordSink) {
        self.sink = Some(sink);
    }

    /// Enable/disable buffering records into [`MpiWorld::trace`]
    /// (disable for constant-memory streaming runs).
    pub fn set_store_records(&mut self, store: bool) {
        self.store_records = store;
    }

    /// The current barrier-phase index.
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Ranks that have completed their whole program.
    pub fn finished_ranks(&self) -> u32 {
        self.finished
    }

    /// Program counters of unfinished ranks (deadlock diagnostics).
    pub fn stuck_ranks(&self) -> Vec<(u32, usize)> {
        self.ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.finished)
            .map(|(i, r)| (i as u32, r.pc))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        rank: u32,
        call: CallKind,
        fd: i32,
        offset: u64,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let rec = Record {
            rank,
            call,
            fd,
            offset,
            bytes,
            start_ns: start.nanos(),
            end_ns: end.nanos(),
            phase: self.phase,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.push(&rec);
        }
        if self.store_records {
            self.trace.push(rec);
        }
    }

    fn drain_fsout(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let sched_items: Vec<_> = self.fsout.sched.drain(..).collect();
        let notify_items: Vec<_> = self.fsout.notify.drain(..).collect();
        for (t, e) in sched_items {
            sched.at(t, Ev::Fs(e));
        }
        for FsNotify::Done { io: _, rank } in notify_items {
            self.complete_io(now, rank, sched);
        }
    }

    /// The rank's pending fs-bound call returned: record it and advance.
    fn complete_io(&mut self, now: SimTime, rank: u32, sched: &mut Scheduler<Ev>) {
        let r = rank as usize;
        let cur = self.ranks[r]
            .cur
            .take()
            .expect("completion without pending op");
        let start = self.ranks[r].op_start;
        let mut fd = cur.fd;
        if let Some(file) = cur.open_file {
            fd = self.ranks[r].fdt.open(file, format!("file{file}"));
        }
        if cur.call == CallKind::Close {
            self.ranks[r].fdt.close(cur.fd);
        }
        self.record(rank, cur.call, fd, cur.offset, cur.bytes, start, now);
        self.ranks[r].pc += 1;
        self.step_rank(now, rank, sched);
    }

    fn fd_of(&self, rank: u32, file: u32) -> i32 {
        // Linear scan over the (tiny) set of open fds for the file.
        let fdt = &self.ranks[rank as usize].fdt;
        for fd in 3..(3 + fdt.opened_total() as i32) {
            if let Some(of) = fdt.get(fd) {
                if of.file == file {
                    return fd;
                }
            }
        }
        -1
    }

    fn stream_of(rank: u32, fd: i32) -> u64 {
        (rank as u64) << 20 | (fd.max(0) as u64)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_fs(
        &mut self,
        now: SimTime,
        rank: u32,
        kind: IoKind,
        file: u32,
        offset: u64,
        len: u64,
        call: CallKind,
        fd: i32,
        open_file: Option<u32>,
        sched: &mut Scheduler<Ev>,
    ) {
        let node = self.ranks[rank as usize].node;
        let req = IoReq {
            rank,
            node,
            file,
            stream: Self::stream_of(rank, fd),
            kind,
            offset,
            len,
        };
        self.ranks[rank as usize].op_start = now;
        self.ranks[rank as usize].cur = Some(CurOp {
            call,
            fd,
            offset,
            bytes: len,
            open_file,
        });
        self.fs.submit(now, req, &mut self.fsout);
        self.drain_fsout(now, sched);
    }

    /// Execute ops for `rank` starting at its pc until one blocks.
    fn step_rank(&mut self, now: SimTime, rank: u32, sched: &mut Scheduler<Ev>) {
        loop {
            let r = rank as usize;
            let pc = self.ranks[r].pc;
            let Some(op) = self.job.programs[r].ops.get(pc).cloned() else {
                if !self.ranks[r].finished {
                    self.ranks[r].finished = true;
                    self.finished += 1;
                }
                return;
            };
            match op {
                Op::Seek { file, offset } => {
                    let fd = self.fd_of(rank, file);
                    self.ranks[r].fdt.seek(fd, offset);
                    self.record(rank, CallKind::Seek, fd, offset, 0, now, now);
                    self.ranks[r].pc += 1;
                }
                Op::Open { file } => {
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Open,
                        file,
                        0,
                        0,
                        CallKind::Open,
                        -1,
                        Some(file),
                        sched,
                    );
                    return;
                }
                Op::Close { file } => {
                    let fd = self.fd_of(rank, file);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Close,
                        file,
                        0,
                        0,
                        CallKind::Close,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::Write { file, bytes } => {
                    let fd = self.fd_of(rank, file);
                    let offset = self.ranks[r].fdt.advance(fd, bytes).unwrap_or(0);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Write,
                        file,
                        offset,
                        bytes,
                        CallKind::Write,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::WriteAt {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(rank, file);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Write,
                        file,
                        offset,
                        bytes,
                        CallKind::Write,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::Read { file, bytes } => {
                    let fd = self.fd_of(rank, file);
                    let offset = self.ranks[r].fdt.advance(fd, bytes).unwrap_or(0);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Read,
                        file,
                        offset,
                        bytes,
                        CallKind::Read,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::ReadAt {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(rank, file);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Read,
                        file,
                        offset,
                        bytes,
                        CallKind::Read,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::MetaWrite {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(rank, file);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::MetaWrite,
                        file,
                        offset,
                        bytes,
                        CallKind::MetaWrite,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::MetaRead {
                    file,
                    offset,
                    bytes,
                } => {
                    let fd = self.fd_of(rank, file);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::MetaRead,
                        file,
                        offset,
                        bytes,
                        CallKind::MetaRead,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::Flush { file } => {
                    let fd = self.fd_of(rank, file);
                    self.submit_fs(
                        now,
                        rank,
                        IoKind::Flush,
                        file,
                        0,
                        0,
                        CallKind::Flush,
                        fd,
                        None,
                        sched,
                    );
                    return;
                }
                Op::Compute { span } => {
                    self.ranks[r].op_start = now;
                    self.ranks[r].cur = Some(CurOp {
                        call: CallKind::Compute,
                        fd: -1,
                        offset: 0,
                        bytes: 0,
                        open_file: None,
                    });
                    sched.at(now + span, Ev::ComputeDone(rank));
                    return;
                }
                Op::Barrier => {
                    self.barrier_arrivals[r] = Some(now);
                    self.arrived += 1;
                    self.ranks[r].pc += 1;
                    if self.arrived == self.job.ranks() {
                        self.release_barrier(now, sched);
                    }
                    return;
                }
                Op::Send { to, bytes } => {
                    let mut cost = SimSpan::from_secs_f64(self.mpi.latency)
                        + SimSpan::for_bytes(bytes, self.mpi.bw);
                    if now.nanos() < self.fault_expiry {
                        if let Some(f) = self.fault.as_deref_mut() {
                            // Transient message loss: each drop costs one
                            // bounded retransmit timeout before delivery.
                            cost += f.msg_drop_delay(now);
                        }
                    }
                    let done = now + cost;
                    self.record(rank, CallKind::Send, -1, 0, bytes, now, done);
                    self.ranks[r].pc += 1;
                    // Message becomes available at `done`.
                    let ch = self.channels.entry((rank, to)).or_default();
                    if let Some((waiter, wstart)) = ch.waiting.take() {
                        // Receiver was blocked: completes at `done`.
                        self.record(waiter, CallKind::Recv, -1, 0, bytes, wstart, done);
                        self.ranks[waiter as usize].pc += 1;
                        sched.at(done, Ev::Start(waiter));
                    } else {
                        ch.avail.push_back(done);
                    }
                    // Blocking send: resume at `done`.
                    sched.at(done, Ev::Start(rank));
                    return;
                }
                Op::Recv { from } => {
                    let ch = self.channels.entry((from, rank)).or_default();
                    if let Some(avail) = ch.avail.pop_front() {
                        let end = avail.max(now);
                        self.record(rank, CallKind::Recv, -1, 0, 0, now, end);
                        self.ranks[r].pc += 1;
                        if end > now {
                            sched.at(end, Ev::Start(rank));
                            return;
                        }
                        // Message already here: continue immediately.
                    } else {
                        assert!(
                            ch.waiting.is_none(),
                            "two receivers blocked on the same channel"
                        );
                        ch.waiting = Some((rank, now));
                        return;
                    }
                }
            }
        }
    }

    fn release_barrier(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let n = self.job.ranks();
        for rank in 0..n {
            let arrival = self.barrier_arrivals[rank as usize]
                .take()
                .expect("all ranks arrived");
            self.record(rank, CallKind::Barrier, -1, 0, 0, arrival, now);
        }
        self.arrived = 0;
        let ended = self.phase;
        self.phase += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.phase_end(ended);
        }
        self.fs.new_phase();
        for rank in 0..n {
            let jitter = SimSpan::from_secs_f64(self.rng.f64() * self.mpi.barrier_jitter);
            sched.at(now + jitter, Ev::Start(rank));
        }
    }

    /// Seed the initial rank-start events (with jitter) onto a simulator.
    pub fn initial_events(&mut self) -> Vec<(SimTime, Ev)> {
        self.fs.new_phase();
        let n = self.job.ranks();
        (0..n)
            .map(|rank| {
                let jitter = SimSpan::from_secs_f64(self.rng.f64() * self.mpi.barrier_jitter);
                (SimTime::ZERO + jitter, Ev::Start(rank))
            })
            .collect()
    }
}

impl World for MpiWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Start(rank) => self.step_rank(now, rank, sched),
            Ev::ComputeDone(rank) => {
                let r = rank as usize;
                let cur = self.ranks[r].cur.take().expect("compute state");
                let start = self.ranks[r].op_start;
                self.record(rank, cur.call, -1, 0, 0, start, now);
                self.ranks[r].pc += 1;
                self.step_rank(now, rank, sched);
            }
            Ev::Fs(fse) => {
                self.fs.handle(now, fse, &mut self.fsout);
                self.drain_fsout(now, sched);
            }
        }
    }
}
