//! # pio-mpi — simulated MPI execution substrate
//!
//! The paper's applications are MPI programs whose I/O happens in
//! synchronous phases. This crate provides what the analysis needs from
//! MPI — ranks, program order, barriers, and point-to-point messages for
//! collective buffering — executed in virtual time against the
//! [`pio_fs`] file-system simulator, with every intercepted call recorded
//! through [`pio_trace`] exactly as IPM-I/O would.
//!
//! * [`program`] — the per-rank I/O program IR ([`program::Op`]) and a
//!   builder; a [`program::Job`] bundles one program per rank plus the
//!   file table.
//! * [`world`] — the discrete-event world: rank scheduling, barrier
//!   bookkeeping, send/recv matching, fd tables, trace recording.
//! * [`runner`] — the [`Runner`] builder: job + platform + seeds →
//!   one [`RunReport`] per run, buffered or streaming, serial or
//!   parallel, with optional deterministic fault injection.
//! * `shard` — the sharded parallel engine behind
//!   [`Runner::shards`]: per-node conservative mini-DES shards plus a
//!   serial server/coordinator plane, bit-identical at any shard count.

pub mod fleet;
pub mod program;
pub mod runner;
mod shard;
pub mod world;

pub use fleet::{run_fleet, FleetJob, FleetRun};
pub use program::{FileSpec, Job, Op, Program, ProgramBuilder};
pub use runner::{set_default_shards, MpiConfig, RunConfig, RunError, RunReport, Runner};
