//! Per-rank I/O programs: the IR that workloads compile to.
//!
//! A `Program` is the sequence of calls one MPI rank makes; a `Job` is one
//! program per rank plus the table of files they reference. The runner
//! executes jobs in virtual time with POSIX cursor semantics (`Seek` +
//! `Write` advance a per-fd cursor, `WriteAt`/`ReadAt` are pwrite/pread).

use pio_des::SimSpan;

/// One call in a rank's program. Files are referenced by job-local index
/// (see [`Job::files`]); the runner assigns per-rank descriptors.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Open file `file` (must precede any I/O on it by this rank).
    Open {
        /// Job-local file index.
        file: u32,
    },
    /// Close file `file`.
    Close {
        /// Job-local file index.
        file: u32,
    },
    /// Set the cursor.
    Seek {
        /// Job-local file index.
        file: u32,
        /// New absolute cursor position.
        offset: u64,
    },
    /// Sequential write of `bytes` at the cursor (advances it).
    Write {
        /// Job-local file index.
        file: u32,
        /// Transfer size.
        bytes: u64,
    },
    /// Positioned write (does not move the cursor).
    WriteAt {
        /// Job-local file index.
        file: u32,
        /// Absolute offset.
        offset: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Sequential read of `bytes` at the cursor (advances it).
    Read {
        /// Job-local file index.
        file: u32,
        /// Transfer size.
        bytes: u64,
    },
    /// Positioned read (does not move the cursor).
    ReadAt {
        /// Job-local file index.
        file: u32,
        /// Absolute offset.
        offset: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Small middleware metadata write at an absolute offset.
    MetaWrite {
        /// Job-local file index.
        file: u32,
        /// Absolute offset.
        offset: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Small middleware metadata read at an absolute offset.
    MetaRead {
        /// Job-local file index.
        file: u32,
        /// Absolute offset.
        offset: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Wait until all dirty data of this rank's node is on the servers.
    Flush {
        /// Job-local file index (label only; flush is per node).
        file: u32,
    },
    /// Global barrier (advances the phase counter).
    Barrier,
    /// Non-I/O computation.
    Compute {
        /// Duration of the computation.
        span: SimSpan,
    },
    /// Blocking send to `to` (aggregation traffic).
    Send {
        /// Destination rank.
        to: u32,
        /// Message size.
        bytes: u64,
    },
    /// Blocking receive from `from` (matches sends in order per pair).
    Recv {
        /// Source rank.
        from: u32,
    },
}

impl Op {
    /// Bytes this op moves (0 for control ops).
    pub fn bytes(&self) -> u64 {
        match *self {
            Op::Write { bytes, .. }
            | Op::WriteAt { bytes, .. }
            | Op::Read { bytes, .. }
            | Op::ReadAt { bytes, .. }
            | Op::MetaWrite { bytes, .. }
            | Op::MetaRead { bytes, .. }
            | Op::Send { bytes, .. } => bytes,
            _ => 0,
        }
    }

    /// File this op targets, if any.
    pub fn file(&self) -> Option<u32> {
        match *self {
            Op::Open { file }
            | Op::Close { file }
            | Op::Seek { file, .. }
            | Op::Write { file, .. }
            | Op::WriteAt { file, .. }
            | Op::Read { file, .. }
            | Op::ReadAt { file, .. }
            | Op::MetaWrite { file, .. }
            | Op::MetaRead { file, .. }
            | Op::Flush { file } => Some(file),
            _ => None,
        }
    }
}

/// One rank's call sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The ops, in program order.
    pub ops: Vec<Op>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total data-plane bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Write { .. } | Op::WriteAt { .. }))
            .map(Op::bytes)
            .sum()
    }

    /// Total data-plane bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Read { .. } | Op::ReadAt { .. }))
            .map(Op::bytes)
            .sum()
    }

    /// Number of barriers.
    pub fn barriers(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Barrier)).count()
    }
}

/// Fluent builder for programs.
///
/// ```
/// use pio_mpi::program::ProgramBuilder;
/// let p = ProgramBuilder::new()
///     .open(0)
///     .write(0, 1 << 20)
///     .barrier()
///     .close(0)
///     .build();
/// assert_eq!(p.ops.len(), 4);
/// assert_eq!(p.bytes_written(), 1 << 20);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `open(file)`.
    pub fn open(mut self, file: u32) -> Self {
        self.ops.push(Op::Open { file });
        self
    }

    /// Append `close(file)`.
    pub fn close(mut self, file: u32) -> Self {
        self.ops.push(Op::Close { file });
        self
    }

    /// Append a seek.
    pub fn seek(mut self, file: u32, offset: u64) -> Self {
        self.ops.push(Op::Seek { file, offset });
        self
    }

    /// Append a sequential write.
    pub fn write(mut self, file: u32, bytes: u64) -> Self {
        self.ops.push(Op::Write { file, bytes });
        self
    }

    /// Append a positioned write.
    pub fn write_at(mut self, file: u32, offset: u64, bytes: u64) -> Self {
        self.ops.push(Op::WriteAt {
            file,
            offset,
            bytes,
        });
        self
    }

    /// Append a sequential read.
    pub fn read(mut self, file: u32, bytes: u64) -> Self {
        self.ops.push(Op::Read { file, bytes });
        self
    }

    /// Append a positioned read.
    pub fn read_at(mut self, file: u32, offset: u64, bytes: u64) -> Self {
        self.ops.push(Op::ReadAt {
            file,
            offset,
            bytes,
        });
        self
    }

    /// Append a metadata write.
    pub fn meta_write(mut self, file: u32, offset: u64, bytes: u64) -> Self {
        self.ops.push(Op::MetaWrite {
            file,
            offset,
            bytes,
        });
        self
    }

    /// Append a metadata read.
    pub fn meta_read(mut self, file: u32, offset: u64, bytes: u64) -> Self {
        self.ops.push(Op::MetaRead {
            file,
            offset,
            bytes,
        });
        self
    }

    /// Append a flush.
    pub fn flush(mut self, file: u32) -> Self {
        self.ops.push(Op::Flush { file });
        self
    }

    /// Append a barrier.
    pub fn barrier(mut self) -> Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Append computation.
    pub fn compute(mut self, span: SimSpan) -> Self {
        self.ops.push(Op::Compute { span });
        self
    }

    /// Append a blocking send.
    pub fn send(mut self, to: u32, bytes: u64) -> Self {
        self.ops.push(Op::Send { to, bytes });
        self
    }

    /// Append a blocking receive.
    pub fn recv(mut self, from: u32) -> Self {
        self.ops.push(Op::Recv { from });
        self
    }

    /// Finish the program.
    pub fn build(self) -> Program {
        Program { ops: self.ops }
    }
}

/// Declaration of a file used by a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpec {
    /// Whether multiple ranks write it (enables extent-lock semantics).
    pub shared: bool,
}

/// A complete multi-rank workload.
#[derive(Debug, Clone, Default)]
pub struct Job {
    /// One program per rank (index = rank).
    pub programs: Vec<Program>,
    /// Files referenced by the programs (index = file id in ops).
    pub files: Vec<FileSpec>,
}

impl Job {
    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.programs.len() as u32
    }

    /// Total bytes written across ranks.
    pub fn total_bytes_written(&self) -> u64 {
        self.programs.iter().map(Program::bytes_written).sum()
    }

    /// Total bytes read across ranks.
    pub fn total_bytes_read(&self) -> u64 {
        self.programs.iter().map(Program::bytes_read).sum()
    }

    /// Static validity: every referenced file exists, every file I/O is
    /// preceded by an open and not after a close, barrier counts agree
    /// across ranks, and every send has a matching recv (per ordered
    /// pair). Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let nf = self.files.len() as u32;
        let mut barrier_counts = Vec::with_capacity(self.programs.len());
        let mut sends: std::collections::HashMap<(u32, u32), i64> =
            std::collections::HashMap::new();
        for (rank, prog) in self.programs.iter().enumerate() {
            let mut open: Vec<bool> = vec![false; nf as usize];
            for (i, op) in prog.ops.iter().enumerate() {
                if let Some(f) = op.file() {
                    if f >= nf {
                        return Err(format!("rank {rank} op {i}: file {f} not declared"));
                    }
                    match op {
                        Op::Open { .. } => {
                            if open[f as usize] {
                                return Err(format!("rank {rank} op {i}: double open of file {f}"));
                            }
                            open[f as usize] = true;
                        }
                        Op::Close { .. } => {
                            if !open[f as usize] {
                                return Err(format!(
                                    "rank {rank} op {i}: close of unopened file {f}"
                                ));
                            }
                            open[f as usize] = false;
                        }
                        _ => {
                            if !open[f as usize] {
                                return Err(format!(
                                    "rank {rank} op {i}: I/O on unopened file {f}"
                                ));
                            }
                        }
                    }
                }
                match *op {
                    Op::Send { to, .. } => {
                        if to as usize >= self.programs.len() {
                            return Err(format!("rank {rank} op {i}: send to missing rank {to}"));
                        }
                        *sends.entry((rank as u32, to)).or_insert(0) += 1;
                    }
                    Op::Recv { from } => {
                        if from as usize >= self.programs.len() {
                            return Err(format!(
                                "rank {rank} op {i}: recv from missing rank {from}"
                            ));
                        }
                        *sends.entry((from, rank as u32)).or_insert(0) -= 1;
                    }
                    _ => {}
                }
            }
            barrier_counts.push(prog.barriers());
        }
        if let (Some(&min), Some(&max)) = (barrier_counts.iter().min(), barrier_counts.iter().max())
        {
            if min != max {
                return Err(format!(
                    "barrier count mismatch across ranks: {min} vs {max}"
                ));
            }
        }
        for ((from, to), bal) in sends {
            if bal != 0 {
                return Err(format!("unmatched messages {from}->{to}: balance {bal}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_two_ranks() -> Job {
        let p0 = ProgramBuilder::new()
            .open(0)
            .write(0, 100)
            .barrier()
            .send(1, 50)
            .close(0)
            .build();
        let p1 = ProgramBuilder::new()
            .open(0)
            .write_at(0, 100, 100)
            .barrier()
            .recv(0)
            .close(0)
            .build();
        Job {
            programs: vec![p0, p1],
            files: vec![FileSpec { shared: true }],
        }
    }

    #[test]
    fn builder_produces_expected_ops() {
        let p = ProgramBuilder::new()
            .open(0)
            .seek(0, 42)
            .write(0, 10)
            .read(0, 5)
            .flush(0)
            .barrier()
            .close(0)
            .build();
        assert_eq!(p.ops.len(), 7);
        assert_eq!(
            p.ops[1],
            Op::Seek {
                file: 0,
                offset: 42
            }
        );
        assert_eq!(p.bytes_written(), 10);
        assert_eq!(p.bytes_read(), 5);
        assert_eq!(p.barriers(), 1);
    }

    #[test]
    fn job_totals() {
        let j = job_two_ranks();
        assert_eq!(j.ranks(), 2);
        assert_eq!(j.total_bytes_written(), 200);
        assert_eq!(j.total_bytes_read(), 0);
    }

    #[test]
    fn valid_job_validates() {
        job_two_ranks().validate().unwrap();
    }

    #[test]
    fn undeclared_file_rejected() {
        let mut j = job_two_ranks();
        j.files.clear();
        assert!(j.validate().unwrap_err().contains("not declared"));
    }

    #[test]
    fn io_before_open_rejected() {
        let p = ProgramBuilder::new().write(0, 10).build();
        let j = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        assert!(j.validate().unwrap_err().contains("unopened"));
    }

    #[test]
    fn io_after_close_rejected() {
        let p = ProgramBuilder::new().open(0).close(0).read(0, 1).build();
        let j = Job {
            programs: vec![p],
            files: vec![FileSpec { shared: false }],
        };
        assert!(j.validate().unwrap_err().contains("unopened"));
    }

    #[test]
    fn barrier_mismatch_rejected() {
        let mut j = job_two_ranks();
        j.programs[0].ops.push(Op::Barrier);
        assert!(j.validate().unwrap_err().contains("barrier count"));
    }

    #[test]
    fn unmatched_send_rejected() {
        let mut j = job_two_ranks();
        j.programs[0].ops.push(Op::Send { to: 1, bytes: 1 });
        assert!(j.validate().unwrap_err().contains("unmatched"));
    }

    #[test]
    fn send_to_missing_rank_rejected() {
        let p = ProgramBuilder::new().send(7, 1).build();
        let j = Job {
            programs: vec![p],
            files: vec![],
        };
        assert!(j.validate().unwrap_err().contains("missing rank"));
    }

    #[test]
    fn op_bytes_and_file_helpers() {
        assert_eq!(Op::Write { file: 0, bytes: 9 }.bytes(), 9);
        assert_eq!(Op::Barrier.bytes(), 0);
        assert_eq!(Op::Barrier.file(), None);
        assert_eq!(Op::Flush { file: 3 }.file(), Some(3));
        assert_eq!(Op::Send { to: 1, bytes: 4 }.bytes(), 4);
    }
}
