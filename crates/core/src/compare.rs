//! Before/after trace comparison — the paper's Figure 5(b) operation:
//! superimpose two runs of the same experiment (e.g. pre- and post-patch)
//! and quantify what changed, per call class.

use crate::distance::{ks_statistic, median_shift, wasserstein1};
use crate::empirical::EmpiricalDist;
use pio_trace::{CallKind, Trace};

/// Per-call-class comparison of two traces.
#[derive(Debug, Clone)]
pub struct ClassComparison {
    /// The call class.
    pub kind: CallKind,
    /// Event counts (before, after).
    pub counts: (usize, usize),
    /// Medians in seconds (before, after).
    pub medians: (f64, f64),
    /// 99th percentiles in seconds (before, after).
    pub p99s: (f64, f64),
    /// Maxima in seconds (before, after).
    pub maxima: (f64, f64),
    /// KS statistic between the two ensembles.
    pub ks: f64,
    /// Wasserstein-1 distance (seconds).
    pub w1: f64,
    /// Relative median shift.
    pub median_shift: f64,
}

impl ClassComparison {
    /// Median speedup (before/after; > 1 means "after" is faster).
    pub fn median_speedup(&self) -> f64 {
        if self.medians.1 <= 0.0 {
            return f64::INFINITY;
        }
        self.medians.0 / self.medians.1
    }

    /// Tail speedup at p99.
    pub fn tail_speedup(&self) -> f64 {
        if self.p99s.1 <= 0.0 {
            return f64::INFINITY;
        }
        self.p99s.0 / self.p99s.1
    }

    /// Whether the two ensembles are effectively the same distribution
    /// (KS below `tol`) — "the patch did not change this class".
    pub fn unchanged(&self, tol: f64) -> bool {
        self.ks <= tol
    }
}

/// Whole-run comparison.
#[derive(Debug, Clone)]
pub struct TraceComparison {
    /// Run-time ratio before/after.
    pub runtime_speedup: f64,
    /// Run times in seconds (before, after).
    pub runtimes: (f64, f64),
    /// Per-class rows, for classes present in both traces.
    pub classes: Vec<ClassComparison>,
}

/// Compare two traces of the same experiment.
pub fn compare(before: &Trace, after: &Trace) -> TraceComparison {
    let mut classes = Vec::new();
    for kind in [
        CallKind::Read,
        CallKind::Write,
        CallKind::MetaRead,
        CallKind::MetaWrite,
        CallKind::Open,
        CallKind::Flush,
    ] {
        let a = before.durations_of(kind);
        let b = after.durations_of(kind);
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let da = EmpiricalDist::new(&a);
        let db = EmpiricalDist::new(&b);
        classes.push(ClassComparison {
            kind,
            counts: (da.n(), db.n()),
            medians: (da.median(), db.median()),
            p99s: (da.quantile(0.99), db.quantile(0.99)),
            maxima: (da.max(), db.max()),
            ks: ks_statistic(&da, &db),
            w1: wasserstein1(&da, &db),
            median_shift: median_shift(&da, &db),
        });
    }
    let rt_before = before.makespan().as_secs_f64();
    let rt_after = after.makespan().as_secs_f64();
    TraceComparison {
        runtime_speedup: if rt_after > 0.0 {
            rt_before / rt_after
        } else {
            f64::INFINITY
        },
        runtimes: (rt_before, rt_after),
        classes,
    }
}

/// Render the comparison as a fixed-width table.
pub fn render(cmp: &TraceComparison) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# before {:.1} s -> after {:.1} s  ({:.2}x)",
        cmp.runtimes.0, cmp.runtimes.1, cmp.runtime_speedup
    );
    let _ = writeln!(
        out,
        "{:<11} {:>14} {:>16} {:>16} {:>8} {:>9}",
        "class", "median b->a", "p99 b->a", "max b->a", "KS", "speedup"
    );
    for c in &cmp.classes {
        let _ = writeln!(
            out,
            "{:<11} {:>6.2}->{:<6.2} {:>7.2}->{:<7.2} {:>7.1}->{:<7.1} {:>8.3} {:>8.2}x",
            c.kind.name(),
            c.medians.0,
            c.medians.1,
            c.p99s.0,
            c.p99s.1,
            c.maxima.0,
            c.maxima.1,
            c.ks,
            c.median_speedup()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::{Record, TraceMeta};

    fn mk(read_secs: &[f64], write_secs: &[f64]) -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "cmp".into(),
            platform: "test".into(),
            ranks: read_secs.len() as u32,
            seed: 0,
        });
        for (i, &s) in read_secs.iter().enumerate() {
            t.push(Record {
                rank: i as u32,
                call: CallKind::Read,
                fd: 3,
                offset: 0,
                bytes: 1 << 20,
                start_ns: 0,
                end_ns: (s * 1e9) as u64,
                phase: 0,
            });
        }
        for (i, &s) in write_secs.iter().enumerate() {
            t.push(Record {
                rank: i as u32,
                call: CallKind::Write,
                fd: 3,
                offset: 0,
                bytes: 1 << 20,
                start_ns: 0,
                end_ns: (s * 1e9) as u64,
                phase: 0,
            });
        }
        t
    }

    #[test]
    fn patch_like_comparison() {
        // Reads 10x faster after; writes unchanged — the Fig 5(b) shape.
        let before = mk(&[100.0, 120.0, 110.0, 130.0], &[5.0, 5.1, 4.9, 5.0]);
        let after = mk(&[10.0, 12.0, 11.0, 13.0], &[5.0, 5.1, 4.9, 5.0]);
        let cmp = compare(&before, &after);
        let read = cmp
            .classes
            .iter()
            .find(|c| c.kind == CallKind::Read)
            .unwrap();
        let write = cmp
            .classes
            .iter()
            .find(|c| c.kind == CallKind::Write)
            .unwrap();
        assert!((read.median_speedup() - 10.0).abs() < 0.5);
        assert!(read.ks > 0.9, "reads changed completely");
        assert!(write.unchanged(0.05), "writes did not change");
        assert!((cmp.runtime_speedup - 10.0).abs() < 1.0);
        let text = render(&cmp);
        assert!(text.contains("read"));
        assert!(text.contains("write"));
    }

    #[test]
    fn missing_classes_are_skipped() {
        let before = mk(&[1.0], &[]);
        let after = mk(&[1.0], &[2.0]);
        let cmp = compare(&before, &after);
        assert_eq!(cmp.classes.len(), 1);
        assert_eq!(cmp.classes[0].kind, CallKind::Read);
    }

    #[test]
    fn identical_traces_have_zero_distances() {
        let t = mk(&[1.0, 2.0, 3.0], &[4.0]);
        let cmp = compare(&t, &t);
        for c in &cmp.classes {
            assert_eq!(c.ks, 0.0);
            assert!(c.w1 < 1e-12);
            assert_eq!(c.median_shift, 0.0);
            assert!((c.median_speedup() - 1.0).abs() < 1e-12);
        }
        assert!((cmp.runtime_speedup - 1.0).abs() < 1e-12);
    }
}
