//! Law-of-Large-Numbers analysis — the paper's Figure 2.
//!
//! Splitting one transfer into `k` sub-transfers makes a task's total time
//! `t_k = Σᵢ Tᵢ` the sum of `k` draws; its distribution is the k-fold
//! convolution of the per-call distribution, with mean `k·µ` and relative
//! spread shrinking as `1/√k`. Because a barriered phase ends at the
//! slowest task (the order statistic of `t_k` over N tasks), the
//! narrowing pulls the phase time in even though the total work is
//! unchanged — "the more opportunities a task has to sample, the more
//! likely it is to have average performance".

use crate::empirical::EmpiricalDist;

/// A density on a uniform grid: `t0 + i·dt ↦ pdf[i]`.
///
/// ```
/// use pio_core::empirical::EmpiricalDist;
/// use pio_core::lln::GridPdf;
/// let d = EmpiricalDist::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// let g = GridPdf::from_empirical(&d, 64);
/// let sum8 = g.convolve_k(8); // density of the sum of 8 iid draws
/// assert!((sum8.mean() - 8.0 * g.mean()).abs() < 0.5);
/// assert!(sum8.cv() < g.cv()); // the Law of Large Numbers
/// ```
#[derive(Debug, Clone)]
pub struct GridPdf {
    /// First grid point.
    pub t0: f64,
    /// Grid spacing.
    pub dt: f64,
    /// Density values.
    pub pdf: Vec<f64>,
}

impl GridPdf {
    /// Discretize an empirical distribution onto `bins` uniform cells
    /// spanning its range (mass-preserving histogram density).
    pub fn from_empirical(dist: &EmpiricalDist, bins: usize) -> Self {
        assert!(bins >= 2);
        let lo = dist.min();
        let hi = dist.max() * 1.0 + (dist.max() - lo).max(1e-12) * 1e-6;
        let dt = (hi - lo) / bins as f64;
        let mut pdf = vec![0.0; bins];
        let w = 1.0 / (dist.n() as f64 * dt);
        for &s in dist.samples() {
            let idx = (((s - lo) / dt) as usize).min(bins - 1);
            pdf[idx] += w;
        }
        GridPdf { t0: lo, dt, pdf }
    }

    /// Total mass `Σ pdf·dt` (≈1 for a proper density).
    pub fn mass(&self) -> f64 {
        self.pdf.iter().sum::<f64>() * self.dt
    }

    /// Mean `∫ t f(t) dt`.
    pub fn mean(&self) -> f64 {
        let m = self.mass();
        self.pdf
            .iter()
            .enumerate()
            .map(|(i, &f)| (self.t0 + (i as f64 + 0.5) * self.dt) * f * self.dt)
            .sum::<f64>()
            / m
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        let m = self.mass();
        self.pdf
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let t = self.t0 + (i as f64 + 0.5) * self.dt;
                (t - mu) * (t - mu) * f * self.dt
            })
            .sum::<f64>()
            / m
    }

    /// Coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.variance().sqrt() / self.mean()
    }

    /// Grid as `(t, f)` pairs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.pdf
            .iter()
            .enumerate()
            .map(|(i, &f)| (self.t0 + (i as f64 + 0.5) * self.dt, f))
            .collect()
    }

    /// Convolve with another grid density (same `dt` required).
    pub fn convolve(&self, other: &GridPdf) -> GridPdf {
        assert!(
            (self.dt - other.dt).abs() < 1e-12 * self.dt.abs().max(1.0),
            "convolution requires matching grids"
        );
        let n = self.pdf.len() + other.pdf.len() - 1;
        let mut out = vec![0.0; n];
        for (i, &a) in self.pdf.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pdf.iter().enumerate() {
                out[i + j] += a * b * self.dt;
            }
        }
        GridPdf {
            t0: self.t0 + other.t0,
            dt: self.dt,
            pdf: out,
        }
    }

    /// k-fold self-convolution: the density of the sum of `k` iid draws.
    pub fn convolve_k(&self, k: u32) -> GridPdf {
        assert!(k >= 1);
        let mut acc = self.clone();
        for _ in 1..k {
            acc = acc.convolve(self);
        }
        acc
    }
}

/// Prediction of the Figure 2 effect for one experiment.
#[derive(Debug, Clone)]
pub struct LlnPrediction {
    /// Number of sub-transfers.
    pub k: u32,
    /// Mean of `t_k` (should be `k·µ₁`).
    pub mean: f64,
    /// CV of `t_k` (should shrink like `1/√k`).
    pub cv: f64,
    /// Expected slowest task total over `n_tasks` (drives the phase time).
    pub expected_worst: f64,
}

/// Predict `t_k` statistics and the expected worst case over `n_tasks`
/// from the distribution of single sub-transfer times.
///
/// The per-call distribution is discretized on `bins` cells; the worst
/// case uses the empirical-maximum formula over the convolved density.
pub fn predict(dist: &EmpiricalDist, k: u32, n_tasks: u32, bins: usize) -> LlnPrediction {
    let base = GridPdf::from_empirical(dist, bins);
    let conv = base.convolve_k(k);
    // Expected maximum over n_tasks of the (discretized) sum distribution:
    // E[max] = Σ t (F(t)^n − F(t⁻)^n).
    let mut acc = 0.0;
    let mut cum = 0.0;
    let mut prev_pow = 0.0;
    let mass = conv.mass();
    for (i, &f) in conv.pdf.iter().enumerate() {
        let t = conv.t0 + (i as f64 + 0.5) * conv.dt;
        cum += f * conv.dt / mass;
        let pow = cum.min(1.0).powi(n_tasks as i32);
        acc += t * (pow - prev_pow);
        prev_pow = pow;
    }
    LlnPrediction {
        k,
        mean: conv.mean(),
        cv: conv.cv(),
        expected_worst: acc,
    }
}

/// The paper's headline comparison: predicted aggregate data rate as a
/// function of `k`, normalized so the rate at `k = 1` is `rate_1`.
///
/// Model: a transfer of fixed total size is split into `k` equal calls
/// whose times scale like `1/k` of a draw from `dist`; the phase ends at
/// the slowest task's total, `E[max over n_tasks of Σₖ Tᵢ]/k`, so
/// `rate(k) = rate_1 · worst(1) / worst(k)`.
pub fn predicted_rate_vs_k(
    dist: &EmpiricalDist,
    ks: &[u32],
    n_tasks: u32,
    rate_1: f64,
    bins: usize,
) -> Vec<(u32, f64)> {
    let worst_1 = predict(dist, 1, n_tasks, bins).expected_worst;
    ks.iter()
        .map(|&k| {
            let p = predict(dist, k, n_tasks, bins);
            let worst_k = p.expected_worst / k as f64;
            (k, rate_1 * worst_1 / worst_k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_dist() -> EmpiricalDist {
        // Broad per-call distribution: values 1..=5 uniformly.
        let mut v = Vec::new();
        for i in 0..500 {
            v.push(1.0 + (i % 5) as f64);
        }
        EmpiricalDist::new(&v)
    }

    #[test]
    fn grid_pdf_preserves_mass_and_mean() {
        let d = spread_dist();
        let g = GridPdf::from_empirical(&d, 128);
        assert!((g.mass() - 1.0).abs() < 1e-9);
        assert!(
            (g.mean() - d.mean()).abs() < 0.05,
            "{} {}",
            g.mean(),
            d.mean()
        );
    }

    #[test]
    fn convolution_adds_means_and_variances() {
        let d = spread_dist();
        let g = GridPdf::from_empirical(&d, 128);
        let g2 = g.convolve(&g);
        assert!((g2.mass() - 1.0).abs() < 1e-6);
        assert!((g2.mean() - 2.0 * g.mean()).abs() < 0.05);
        assert!((g2.variance() - 2.0 * g.variance()).abs() < 0.1);
    }

    #[test]
    fn k_fold_narrows_cv_like_sqrt_k() {
        let d = spread_dist();
        let g = GridPdf::from_empirical(&d, 128);
        let cv1 = g.cv();
        let cv4 = g.convolve_k(4).cv();
        let cv16 = g.convolve_k(16).cv();
        assert!(
            (cv4 - cv1 / 2.0).abs() < 0.05 * cv1,
            "cv4 {cv4} vs {}",
            cv1 / 2.0
        );
        assert!(
            (cv16 - cv1 / 4.0).abs() < 0.05 * cv1,
            "cv16 {cv16} vs {}",
            cv1 / 4.0
        );
    }

    #[test]
    fn prediction_mean_scales_with_k() {
        let d = spread_dist();
        let p1 = predict(&d, 1, 1024, 128);
        let p8 = predict(&d, 8, 1024, 128);
        assert!((p8.mean - 8.0 * p1.mean).abs() < 0.2);
        assert!(p8.cv < p1.cv);
    }

    #[test]
    fn worst_case_per_transfer_improves_with_k() {
        // The Figure 2 effect: worst-of-N sum over k, normalized per
        // sub-transfer count, decreases as k grows.
        let d = spread_dist();
        let p1 = predict(&d, 1, 1024, 96);
        let p4 = predict(&d, 4, 1024, 96);
        let p8 = predict(&d, 8, 1024, 96);
        let w1 = p1.expected_worst;
        let w4 = p4.expected_worst / 4.0;
        let w8 = p8.expected_worst / 8.0;
        assert!(w4 < w1, "w4 {w4} w1 {w1}");
        assert!(w8 < w4, "w8 {w8} w4 {w4}");
        // And the improvement is material (paper saw 16%) but bounded.
        assert!(w8 / w1 > 0.5 && w8 / w1 < 0.99, "{}", w8 / w1);
    }

    #[test]
    fn degenerate_distribution_has_no_lln_gain() {
        let d = EmpiricalDist::new(&vec![2.0; 100]);
        let p1 = predict(&d, 1, 64, 32);
        let p8 = predict(&d, 8, 64, 32);
        // No variance → worst == mean == k·µ; per-transfer worst unchanged.
        assert!((p8.expected_worst / 8.0 - p1.expected_worst).abs() < 0.1);
    }

    #[test]
    fn predicted_rate_increases_with_k() {
        let d = spread_dist();
        let rates = predicted_rate_vs_k(&d, &[1, 2, 4, 8], 1024, 11_610.0, 96);
        assert_eq!(rates[0].0, 1);
        assert!((rates[0].1 - 11_610.0).abs() < 1e-6, "k=1 is the anchor");
        for w in rates.windows(2) {
            assert!(w[1].1 > w[0].1, "rate must rise with k: {rates:?}");
        }
        // The paper's gain was ~16% at k=8; ours should be material but
        // not absurd for a broad per-call distribution.
        let gain = rates[3].1 / rates[0].1;
        assert!(gain > 1.02 && gain < 2.0, "gain {gain}");
    }

    #[test]
    #[should_panic]
    fn convolve_requires_matching_grids() {
        let a = GridPdf {
            t0: 0.0,
            dt: 0.1,
            pdf: vec![1.0; 10],
        };
        let b = GridPdf {
            t0: 0.0,
            dt: 0.2,
            pdf: vec![1.0; 10],
        };
        let _ = a.convolve(&b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Convolution conserves mass and adds means (within grid error).
        #[test]
        fn convolution_properties(samples in proptest::collection::vec(0.1f64..10.0, 8..80), k in 2u32..5) {
            let d = EmpiricalDist::new(&samples);
            let g = GridPdf::from_empirical(&d, 64);
            let gk = g.convolve_k(k);
            prop_assert!((gk.mass() - 1.0).abs() < 1e-6);
            let tol = 0.35 * k as f64 * (g.dt + 1e-9) + 1e-6 + 0.01 * g.mean() * k as f64;
            prop_assert!((gk.mean() - k as f64 * g.mean()).abs() < tol,
                "mean {} vs {}", gk.mean(), k as f64 * g.mean());
        }
    }
}
