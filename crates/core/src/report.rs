//! Human-readable ensemble-analysis report for a trace: the textual
//! equivalent of the paper's figure panels plus the diagnosis.

use crate::diagnosis::{diagnose_with, Thresholds};
use crate::empirical::EmpiricalDist;
use crate::modes::find_modes;
use crate::rates::{durations, write_rate_curve};
use pio_trace::{CallKind, Trace};
use std::fmt::Write as _;

/// Render a full analysis report for `trace`.
pub fn render(trace: &Trace) -> String {
    render_with(trace, &Thresholds::default())
}

/// Render with explicit detector thresholds.
pub fn render_with(trace: &Trace, th: &Thresholds) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ensemble analysis: {} on {} ({} ranks, seed {})",
        trace.meta.experiment, trace.meta.platform, trace.meta.ranks, trace.meta.seed
    );
    let _ = writeln!(
        out,
        "run time {:.2} s, aggregate {:.1} MB/s, {} phases, {} records",
        trace.makespan().as_secs_f64(),
        trace.aggregate_rate_mb_s(),
        trace.phase_count(),
        trace.records.len()
    );
    let wr = write_rate_curve(trace, trace.makespan().as_secs_f64().max(1e-9) / 100.0);
    let _ = writeln!(
        out,
        "write rate: peak {:.1} MB/s, average {:.1} MB/s",
        wr.peak(),
        wr.average()
    );

    for kind in [
        CallKind::Write,
        CallKind::Read,
        CallKind::MetaWrite,
        CallKind::MetaRead,
    ] {
        let samples = durations(trace, kind, None);
        if samples.len() < 4 {
            continue;
        }
        let d = EmpiricalDist::new(&samples);
        let _ = writeln!(
            out,
            "\n## {} ensemble ({} events)\n  mean {:.4}s  median {:.4}s  p99 {:.4}s  max {:.4}s  cv {:.2}",
            kind.name(),
            d.n(),
            d.mean(),
            d.median(),
            d.quantile(0.99),
            d.max(),
            d.cv().unwrap_or(0.0),
        );
        let modes = find_modes(&d, 256, 0.1);
        if !modes.is_empty() {
            let locs: Vec<String> = modes
                .iter()
                .map(|m| format!("{:.3}s ({:.0}%)", m.location, m.mass * 100.0))
                .collect();
            let _ = writeln!(out, "  modes: {}", locs.join(", "));
        }
    }

    let findings = diagnose_with(trace, th);
    let _ = writeln!(out, "\n## Diagnosis ({} findings)", findings.len());
    if findings.is_empty() {
        let _ = writeln!(out, "  no pathological signatures detected");
    }
    for f in &findings {
        let _ = writeln!(out, "  - {f}");
    }
    out
}

/// Render a multi-run ensemble report: stability metrics, stable modes
/// with their presence across runs, and bootstrap confidence intervals on
/// the pooled median — the paper's "is this experiment reproducible?"
/// question answered in one block.
pub fn render_ensemble(label: &str, runs: &[Vec<f64>]) -> String {
    use crate::bootstrap::median_ci;
    use crate::ensemble::Ensemble;
    let mut out = String::new();
    let _ = writeln!(out, "# Ensemble report: {label} ({} runs)", runs.len());
    if runs.iter().any(|r| r.is_empty()) || runs.is_empty() {
        let _ = writeln!(out, "  (insufficient data)");
        return out;
    }
    let ens = Ensemble::from_samples(runs);
    if let Some(s) = ens.stability() {
        let _ = writeln!(
            out,
            "stability: max KS {:.3}, mean KS {:.3}, median spread {:.1}%  -> {}",
            s.max_ks,
            s.mean_ks,
            s.median_spread * 100.0,
            if ens.is_reproducible(0.2) {
                "REPRODUCIBLE (the distribution is the stable object)"
            } else {
                "NOT reproducible — investigate the divergent run"
            }
        );
    }
    let pooled = ens.pooled();
    let ci = median_ci(&pooled, 200, 0.95, 0xC1);
    let _ = writeln!(
        out,
        "pooled median {:.4}s  (95% CI [{:.4}, {:.4}], n={})",
        ci.estimate,
        ci.lo,
        ci.hi,
        pooled.n()
    );
    let stable = ens.stable_modes(0.1, 0.15);
    if !stable.is_empty() {
        let _ = writeln!(out, "modes (location, mass, presence across runs):");
        for (m, presence) in &stable {
            let _ = writeln!(
                out,
                "  {:>8.3}s  mass {:>4.0}%  in {:>3.0}% of runs{}",
                m.location,
                m.mass * 100.0,
                presence * 100.0,
                if *presence >= 0.99 { "  [stable]" } else { "" }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::{Record, TraceMeta};

    fn sample_trace() -> Trace {
        let mut t = Trace::new(TraceMeta {
            experiment: "report-test".into(),
            platform: "test".into(),
            ranks: 16,
            seed: 42,
        });
        for i in 0..16u32 {
            t.push(Record {
                rank: i,
                call: CallKind::Write,
                fd: 3,
                offset: 0,
                bytes: 1 << 20,
                start_ns: 0,
                end_ns: 1_000_000_000 + i as u64 * 50_000_000,
                phase: 0,
            });
        }
        t
    }

    #[test]
    fn report_contains_sections() {
        let text = render(&sample_trace());
        assert!(text.contains("Ensemble analysis: report-test"));
        assert!(text.contains("write ensemble (16 events)"));
        assert!(text.contains("Diagnosis"));
        assert!(text.contains("median"));
    }

    #[test]
    fn healthy_trace_reports_no_findings() {
        let text = render(&sample_trace());
        assert!(text.contains("no pathological signatures"));
    }

    #[test]
    fn ensemble_report_renders_stable_modes() {
        let runs: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..200)
                    .map(|i| {
                        let base = if i % 3 == 0 { 8.0 } else { 16.0 };
                        base + ((i * 7 + r * 11) % 13) as f64 * 0.02
                    })
                    .collect()
            })
            .collect();
        let text = render_ensemble("ior-512m", &runs);
        assert!(text.contains("REPRODUCIBLE"), "{text}");
        assert!(text.contains("[stable]"), "{text}");
        assert!(text.contains("95% CI"));
    }

    #[test]
    fn ensemble_report_flags_divergence() {
        let runs = vec![
            (0..100)
                .map(|i| 1.0 + (i % 7) as f64 * 0.01)
                .collect::<Vec<f64>>(),
            (0..100).map(|i| 9.0 + (i % 7) as f64 * 0.01).collect(),
        ];
        let text = render_ensemble("bad", &runs);
        assert!(text.contains("NOT reproducible"), "{text}");
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        let text = render(&t);
        assert!(text.contains("0 records"));
    }
}
