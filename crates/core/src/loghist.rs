//! Log-spaced histograms — the paper's log-log plots (Figures 4(c,f),
//! 6(c,f,i,l)) where "the different modes, especially the slowest modes,
//! stand out".
//!
//! The implementation lives in [`pio_des::hist`] so that the analysis
//! layer (this crate), the capture layer (`pio-trace`), and the streaming
//! sketches (`pio-ingest`) all share one mergeable log-histogram; this
//! module re-exports it under its historical name and keeps the
//! analysis-facing tests.

pub use pio_des::hist::{BinEdges, BinSlot, LogBins, LogHistogram};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_decades() {
        let mut h = LogHistogram::new(0.001, 1000.0, 60);
        for v in [0.002, 0.02, 0.2, 2.0, 20.0, 200.0] {
            h.add(v);
        }
        assert_eq!(h.in_range(), 6);
        // Each sample in its own bin (decade apart, 10 bins per decade).
        assert_eq!(h.series().len(), 6);
    }

    #[test]
    fn nonpositive_goes_to_underflow() {
        let mut h = LogHistogram::new(0.1, 10.0, 4);
        h.add(0.0);
        h.add(-5.0);
        h.add(1.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.in_range(), 1);
    }

    #[test]
    fn from_samples_covers_everything_positive() {
        let samples: Vec<f64> = (1..=500).map(|i| i as f64 * 0.01).collect();
        let h = LogHistogram::from_samples(&samples, 40);
        assert_eq!(h.in_range(), 500);
    }

    #[test]
    fn bin_center_round_trips() {
        let h = LogHistogram::new(0.01, 100.0, 32);
        for i in 0..32 {
            let c = h.bin_center(i);
            let e = h.bin_edges(i);
            assert!(e.contains(c), "bin {i}: {} {c} {}", e.left, e.right);
        }
    }

    #[test]
    fn tail_fraction_measures_the_shoulder() {
        let mut h = LogHistogram::new(0.1, 1000.0, 40);
        // 90 fast events at ~1, 10 slow at ~100.
        for _ in 0..90 {
            h.add(1.0);
        }
        for _ in 0..10 {
            h.add(100.0);
        }
        let tail = h.tail_fraction(10.0);
        assert!((tail - 0.1).abs() < 0.02, "{tail}");
        assert!(h.tail_fraction(0.05) > 0.99);
        assert_eq!(h.tail_fraction(2000.0), 0.0);
    }

    #[test]
    fn series_skips_empty_bins() {
        let mut h = LogHistogram::new(0.1, 10.0, 20);
        h.add(1.0);
        assert_eq!(h.series().len(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_layout() {
        let mut h = LogHistogram::new(0.1, 10.0, 4);
        h.add(1.0);
        h.add(-1.0);
        h.add(100.0);
        let json = serde_json::to_string(&h).unwrap();
        // Field layout is part of the on-disk profile format.
        for key in [
            "\"lo\"",
            "\"hi\"",
            "\"counts\"",
            "\"underflow\"",
            "\"overflow\"",
        ] {
            assert!(json.contains(key), "{json}");
        }
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Mass conservation across decades.
        #[test]
        fn mass_conserved(samples in proptest::collection::vec(1e-6f64..1e6, 1..300)) {
            let h = LogHistogram::from_samples(&samples, 64);
            prop_assert_eq!(h.total() as usize, samples.len());
            prop_assert_eq!(h.in_range() as usize, samples.len());
        }

        /// Bins are monotone in value.
        #[test]
        fn binning_monotone(a in 1e-3f64..1e3, b in 1e-3f64..1e3) {
            let g = LogBins::new(1e-4, 1e4, 48);
            let bin = |v: f64| match g.slot(v) {
                BinSlot::In(i) => i,
                _ => unreachable!("in-range by construction"),
            };
            if a <= b {
                prop_assert!(bin(a) <= bin(b));
            } else {
                prop_assert!(bin(a) >= bin(b));
            }
        }
    }
}
