//! Log-spaced histograms — the paper's log-log plots (Figures 4(c,f),
//! 6(c,f,i,l)) where "the different modes, especially the slowest modes,
//! stand out".

use serde::{Deserialize, Serialize};

/// A histogram with logarithmically spaced bins over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// `bins` log-spaced bins over `[lo, hi)`; both bounds must be positive.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins > 0, "invalid log histogram");
        LogHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build from positive samples, range padded to cover all of them.
    /// Non-positive samples land in the underflow counter.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        let positives: Vec<f64> = samples.iter().cloned().filter(|&v| v > 0.0).collect();
        assert!(!positives.is_empty(), "no positive samples");
        let min = positives.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = positives.iter().cloned().fold(0.0f64, f64::max);
        let mut h = LogHistogram::new(min / 1.05, max * 1.05, bins);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Record one sample (non-positive values count as underflow).
    pub fn add(&mut self, v: f64) {
        if v <= 0.0 || v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (v / self.lo).ln() / (self.hi / self.lo).ln();
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Geometric center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let ratio = (self.hi / self.lo).powf((i as f64 + 0.5) / self.counts.len() as f64);
        self.lo * ratio
    }

    /// Bin edges `(left, right)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let n = self.counts.len() as f64;
        let l = self.lo * (self.hi / self.lo).powf(i as f64 / n);
        let r = self.lo * (self.hi / self.lo).powf((i as f64 + 1.0) / n);
        (l, r)
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin count.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total samples including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// In-range samples.
    pub fn in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(center, count)` pairs with nonzero counts — ready for log-log
    /// plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Fraction of in-range mass at or beyond `threshold` — quantifies a
    /// "right shoulder" like Franklin's slow reads.
    pub fn tail_fraction(&self, threshold: f64) -> f64 {
        let total = self.in_range();
        if total == 0 {
            return 0.0;
        }
        let tail: u64 = (0..self.counts.len())
            .filter(|&i| self.bin_edges(i).1 > threshold)
            .map(|i| self.counts[i])
            .sum();
        tail as f64 / total as f64 + self.overflow as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_decades() {
        let mut h = LogHistogram::new(0.001, 1000.0, 60);
        for v in [0.002, 0.02, 0.2, 2.0, 20.0, 200.0] {
            h.add(v);
        }
        assert_eq!(h.in_range(), 6);
        // Each sample in its own bin (decade apart, 10 bins per decade).
        assert_eq!(h.series().len(), 6);
    }

    #[test]
    fn nonpositive_goes_to_underflow() {
        let mut h = LogHistogram::new(0.1, 10.0, 4);
        h.add(0.0);
        h.add(-5.0);
        h.add(1.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.in_range(), 1);
    }

    #[test]
    fn from_samples_covers_everything_positive() {
        let samples: Vec<f64> = (1..=500).map(|i| i as f64 * 0.01).collect();
        let h = LogHistogram::from_samples(&samples, 40);
        assert_eq!(h.in_range(), 500);
    }

    #[test]
    fn bin_center_round_trips() {
        let h = LogHistogram::new(0.01, 100.0, 32);
        for i in 0..32 {
            let c = h.bin_center(i);
            let (l, r) = h.bin_edges(i);
            assert!(l < c && c < r, "bin {i}: {l} {c} {r}");
        }
    }

    #[test]
    fn tail_fraction_measures_the_shoulder() {
        let mut h = LogHistogram::new(0.1, 1000.0, 40);
        // 90 fast events at ~1, 10 slow at ~100.
        for _ in 0..90 {
            h.add(1.0);
        }
        for _ in 0..10 {
            h.add(100.0);
        }
        let tail = h.tail_fraction(10.0);
        assert!((tail - 0.1).abs() < 0.02, "{tail}");
        assert!(h.tail_fraction(0.05) > 0.99);
        assert_eq!(h.tail_fraction(2000.0), 0.0);
    }

    #[test]
    fn series_skips_empty_bins() {
        let mut h = LogHistogram::new(0.1, 10.0, 20);
        h.add(1.0);
        assert_eq!(h.series().len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Mass conservation across decades.
        #[test]
        fn mass_conserved(samples in proptest::collection::vec(1e-6f64..1e6, 1..300)) {
            let h = LogHistogram::from_samples(&samples, 64);
            prop_assert_eq!(h.total() as usize, samples.len());
            prop_assert_eq!(h.in_range() as usize, samples.len());
        }

        /// Bins are monotone in value.
        #[test]
        fn binning_monotone(a in 1e-3f64..1e3, b in 1e-3f64..1e3) {
            let _h = LogHistogram::new(1e-4, 1e4, 48);
            let bin = |v: f64| {
                let frac = (v / 1e-4f64).ln() / (1e4f64 / 1e-4).ln();
                ((frac * 48.0) as usize).min(47)
            };
            if a <= b {
                prop_assert!(bin(a) <= bin(b));
            } else {
                prop_assert!(bin(a) >= bin(b));
            }
        }
    }
}
