//! Bootstrap confidence intervals for ensemble statistics.
//!
//! The paper argues the moments and modes of an I/O-time distribution are
//! the reproducible objects; bootstrap resampling quantifies how well one
//! run pins them down — e.g. whether a median shift between two runs is
//! signal or noise. Deterministic (seeded), dependency-free resampling.

use crate::empirical::EmpiricalDist;

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// SplitMix64 — small deterministic generator for resampling indices
/// (keeps `rand` out of this crate's runtime dependencies).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// SplitMix64 finalizer: a bijective 64-bit scramble.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream of resample `r` under `seed`.
///
/// Every resample owns an independent generator derived by **fully
/// mixing** `(seed, r)` — a naive `seed + r·constant` start state would
/// make stream `r` a shifted copy of stream 0 (SplitMix64 walks its
/// state by a fixed increment), correlating the resamples. The full
/// scramble makes the partition of resamples over threads irrelevant:
/// any worker count draws exactly the same indices for resample `r`.
fn resample_stream(seed: u64, r: u64) -> Mix {
    Mix(mix64(
        (seed ^ 0xB007).wrapping_add(r.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    ))
}

/// Resamples below this run serially: thread spawn costs more than the
/// work (resamples × n index draws + sorts).
const PARALLEL_MIN_WORK: usize = 1 << 17;

/// Compute the sorted bootstrap statistics for `resamples` resamples,
/// `lo..hi` of which are produced by this call (one worker's share).
fn resample_range<F: Fn(&EmpiricalDist) -> f64>(
    samples: &[f64],
    stat: &F,
    lo: usize,
    hi: usize,
    seed: u64,
) -> Vec<f64> {
    let n = samples.len();
    let mut out = Vec::with_capacity(hi - lo);
    let mut buf = vec![0.0f64; n];
    // One scratch distribution per worker, refilled in place: the loop
    // body allocates nothing after the first iteration.
    let mut scratch = EmpiricalDist::new(samples);
    for r in lo..hi {
        let mut rng = resample_stream(seed, r as u64);
        for slot in buf.iter_mut() {
            *slot = samples[rng.index(n)];
        }
        scratch.refill_from(&buf);
        out.push(stat(&scratch));
    }
    out
}

/// Percentile-bootstrap confidence interval for `stat` over `dist`:
/// `resamples` with-replacement resamples, interval at `level`
/// (e.g. 0.95), generator seeded by `seed`.
///
/// Large inputs fan the resamples out over threads. The result is
/// **bit-identical for any worker count**: resample `r` always draws
/// from its own SplitMix64-derived stream, and the percentile
/// extraction sorts the statistics, erasing completion order.
pub fn bootstrap_ci<F: Fn(&EmpiricalDist) -> f64 + Sync>(
    dist: &EmpiricalDist,
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    let workers = if resamples * dist.n() >= PARALLEL_MIN_WORK {
        std::thread::available_parallelism().map_or(1, |p| p.get().min(8))
    } else {
        1
    };
    bootstrap_ci_with_workers(dist, stat, resamples, level, seed, workers)
}

/// [`bootstrap_ci`] with an explicit worker count — exposed so the
/// determinism suite can assert worker-count invariance directly.
#[doc(hidden)]
pub fn bootstrap_ci_with_workers<F: Fn(&EmpiricalDist) -> f64 + Sync>(
    dist: &EmpiricalDist,
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
    workers: usize,
) -> ConfidenceInterval {
    assert!(resamples >= 8, "too few resamples");
    assert!((0.0..1.0).contains(&level) && level > 0.0);
    let estimate = stat(dist);
    let samples = dist.samples();

    let workers = workers.clamp(1, resamples);
    let mut stats = if workers == 1 {
        resample_range(samples, &stat, 0, resamples, seed)
    } else {
        let per = resamples.div_ceil(workers);
        let stat = &stat;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = (w * per).min(resamples);
                    let hi = ((w + 1) * per).min(resamples);
                    scope.spawn(move || resample_range(samples, stat, lo, hi, seed))
                })
                .collect();
            let mut all = Vec::with_capacity(resamples);
            for h in handles {
                all.extend(h.join().expect("bootstrap worker"));
            }
            all
        })
    };
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    ConfidenceInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    }
}

/// CI for the median.
pub fn median_ci(
    dist: &EmpiricalDist,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_ci(dist, EmpiricalDist::median, resamples, level, seed)
}

/// CI for the mean.
pub fn mean_ci(
    dist: &EmpiricalDist,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_ci(dist, EmpiricalDist::mean, resamples, level, seed)
}

/// Are two runs' statistics distinguishable? True when the bootstrap
/// intervals of `stat` at `level` do not overlap — the "same experiment
/// or a real shift?" question the ensemble method keeps asking.
pub fn distinguishable<F: Fn(&EmpiricalDist) -> f64 + Copy + Sync>(
    a: &EmpiricalDist,
    b: &EmpiricalDist,
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> bool {
    let ca = bootstrap_ci(a, stat, resamples, level, seed);
    let cb = bootstrap_ci(b, stat, resamples, level, seed.wrapping_add(1));
    ca.hi < cb.lo || cb.hi < ca.lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(offset: f64) -> EmpiricalDist {
        let v: Vec<f64> = (0..400).map(|i| offset + (i % 40) as f64 * 0.1).collect();
        EmpiricalDist::new(&v)
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let d = dist(10.0);
        let ci = median_ci(&d, 200, 0.95, 7);
        assert!(ci.contains(ci.estimate), "{ci:?}");
        assert!(ci.lo <= ci.hi);
        assert!((ci.estimate - d.median()).abs() < 1e-12);
        assert!(ci.width() < 1.0, "tight data, tight CI: {ci:?}");
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let d = dist(5.0);
        let a = mean_ci(&d, 100, 0.9, 3);
        let b = mean_ci(&d, 100, 0.9, 3);
        assert_eq!(a, b);
        let c = mean_ci(&d, 100, 0.9, 4);
        assert!(a != c || a.width() == 0.0);
    }

    #[test]
    fn separated_distributions_are_distinguishable() {
        let a = dist(10.0);
        let b = dist(20.0);
        assert!(distinguishable(&a, &b, EmpiricalDist::median, 100, 0.95, 1));
    }

    #[test]
    fn identical_distributions_are_not_distinguishable() {
        let a = dist(10.0);
        let b = dist(10.0);
        assert!(!distinguishable(
            &a,
            &b,
            EmpiricalDist::median,
            100,
            0.95,
            2
        ));
    }

    #[test]
    fn worker_count_does_not_change_the_interval() {
        let d = dist(3.0);
        let serial = bootstrap_ci_with_workers(&d, EmpiricalDist::median, 128, 0.95, 11, 1);
        for workers in [2, 3, 8, 128] {
            let par = bootstrap_ci_with_workers(&d, EmpiricalDist::median, 128, 0.95, 11, workers);
            assert_eq!(serial, par, "workers={workers}");
        }
        // And the auto-dispatching entry point agrees too.
        assert_eq!(serial, median_ci(&d, 128, 0.95, 11));
    }

    #[test]
    fn resample_streams_are_not_shifted_copies() {
        // Adjacent resamples must draw unrelated index sequences; a
        // shifted-stream bug would make stream r+1 reproduce stream r
        // offset by one draw.
        let a: Vec<u64> = {
            let mut s = resample_stream(42, 0);
            (0..16).map(|_| s.next()).collect()
        };
        let b: Vec<u64> = {
            let mut s = resample_stream(42, 1);
            (0..16).map(|_| s.next()).collect()
        };
        assert_ne!(a, b);
        assert_ne!(a[1..], b[..15], "stream 1 is stream 0 shifted");
        assert_ne!(b[1..], a[..15], "stream 0 is stream 1 shifted");
    }

    #[test]
    fn wider_level_wider_interval() {
        let d = dist(0.0);
        let narrow = mean_ci(&d, 300, 0.5, 9);
        let wide = mean_ci(&d, 300, 0.99, 9);
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn more_data_tighter_interval() {
        let small = EmpiricalDist::new(&(0..20).map(|i| (i % 7) as f64).collect::<Vec<_>>());
        let big = EmpiricalDist::new(&(0..2000).map(|i| (i % 7) as f64).collect::<Vec<_>>());
        let ci_small = mean_ci(&small, 200, 0.95, 5);
        let ci_big = mean_ci(&big, 200, 0.95, 5);
        assert!(ci_big.width() < ci_small.width());
    }
}
