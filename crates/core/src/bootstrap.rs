//! Bootstrap confidence intervals for ensemble statistics.
//!
//! The paper argues the moments and modes of an I/O-time distribution are
//! the reproducible objects; bootstrap resampling quantifies how well one
//! run pins them down — e.g. whether a median shift between two runs is
//! signal or noise. Deterministic (seeded), dependency-free resampling.

use crate::empirical::EmpiricalDist;

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// SplitMix64 — small deterministic generator for resampling indices
/// (keeps `rand` out of this crate's runtime dependencies).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Percentile-bootstrap confidence interval for `stat` over `dist`:
/// `resamples` with-replacement resamples, interval at `level`
/// (e.g. 0.95), generator seeded by `seed`.
pub fn bootstrap_ci<F: Fn(&EmpiricalDist) -> f64>(
    dist: &EmpiricalDist,
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(resamples >= 8, "too few resamples");
    assert!((0.0..1.0).contains(&level) && level > 0.0);
    let estimate = stat(dist);
    let n = dist.n();
    let samples = dist.samples();
    let mut rng = Mix(seed ^ 0xB007);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = samples[rng.index(n)];
        }
        stats.push(stat(&EmpiricalDist::new(&buf)));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    ConfidenceInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    }
}

/// CI for the median.
pub fn median_ci(
    dist: &EmpiricalDist,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_ci(dist, EmpiricalDist::median, resamples, level, seed)
}

/// CI for the mean.
pub fn mean_ci(
    dist: &EmpiricalDist,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_ci(dist, EmpiricalDist::mean, resamples, level, seed)
}

/// Are two runs' statistics distinguishable? True when the bootstrap
/// intervals of `stat` at `level` do not overlap — the "same experiment
/// or a real shift?" question the ensemble method keeps asking.
pub fn distinguishable<F: Fn(&EmpiricalDist) -> f64 + Copy>(
    a: &EmpiricalDist,
    b: &EmpiricalDist,
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> bool {
    let ca = bootstrap_ci(a, stat, resamples, level, seed);
    let cb = bootstrap_ci(b, stat, resamples, level, seed.wrapping_add(1));
    ca.hi < cb.lo || cb.hi < ca.lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(offset: f64) -> EmpiricalDist {
        let v: Vec<f64> = (0..400).map(|i| offset + (i % 40) as f64 * 0.1).collect();
        EmpiricalDist::new(&v)
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let d = dist(10.0);
        let ci = median_ci(&d, 200, 0.95, 7);
        assert!(ci.contains(ci.estimate), "{ci:?}");
        assert!(ci.lo <= ci.hi);
        assert!((ci.estimate - d.median()).abs() < 1e-12);
        assert!(ci.width() < 1.0, "tight data, tight CI: {ci:?}");
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let d = dist(5.0);
        let a = mean_ci(&d, 100, 0.9, 3);
        let b = mean_ci(&d, 100, 0.9, 3);
        assert_eq!(a, b);
        let c = mean_ci(&d, 100, 0.9, 4);
        assert!(a != c || a.width() == 0.0);
    }

    #[test]
    fn separated_distributions_are_distinguishable() {
        let a = dist(10.0);
        let b = dist(20.0);
        assert!(distinguishable(&a, &b, EmpiricalDist::median, 100, 0.95, 1));
    }

    #[test]
    fn identical_distributions_are_not_distinguishable() {
        let a = dist(10.0);
        let b = dist(10.0);
        assert!(!distinguishable(
            &a,
            &b,
            EmpiricalDist::median,
            100,
            0.95,
            2
        ));
    }

    #[test]
    fn wider_level_wider_interval() {
        let d = dist(0.0);
        let narrow = mean_ci(&d, 300, 0.5, 9);
        let wide = mean_ci(&d, 300, 0.99, 9);
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn more_data_tighter_interval() {
        let small = EmpiricalDist::new(&(0..20).map(|i| (i % 7) as f64).collect::<Vec<_>>());
        let big = EmpiricalDist::new(&(0..2000).map(|i| (i % 7) as f64).collect::<Vec<_>>());
        let ci_small = mean_ci(&small, 200, 0.95, 5);
        let ci_big = mean_ci(&big, 200, 0.95, 5);
        assert!(ci_big.width() < ci_small.width());
    }
}
