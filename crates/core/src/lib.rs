//! # pio-core — ensemble statistics for parallel I/O performance
//!
//! The paper's contribution: move from the analysis of individual I/O
//! *events* — which vary by orders of magnitude between runs — to the
//! analysis of performance *ensembles*, whose "statistical moments and
//! modes … are reproducible". This crate implements that methodology over
//! IPM-I/O traces:
//!
//! * [`hist`] / [`loghist`] — linear and log-log completion-time
//!   histograms (the paper's Figures 1(c), 4(c,f), 6(c,f,i,l)).
//! * [`empirical`] — empirical distributions: ECDF, quantiles, moments.
//! * [`kde`] — Gaussian kernel density estimation for smooth mode finding.
//! * [`modes`] — peak detection and harmonic-structure recognition
//!   (the R, R/2, R/4 fingerprint of intra-node serialization).
//! * [`order_stats`] — Equation (1): `f_N(t) = N·F(t)^(N-1)·f(t)`, the
//!   distribution of a synchronous phase's slowest event.
//! * [`lln`] — Law-of-Large-Numbers analysis: k-fold convolutions and the
//!   predicted narrowing that explains the paper's Figure 2 speedups.
//! * [`distance`] — Kolmogorov–Smirnov and Wasserstein-1 distances for
//!   run-to-run reproducibility claims.
//! * [`bootstrap`] — resampling confidence intervals: is a shift between
//!   two runs' medians signal or noise?
//! * [`compare`] — before/after run comparison per call class (the
//!   Figure 5(b) "before and after middleware update" view).
//! * [`rates`] — aggregate data-rate curves and size-normalized (sec/MB)
//!   samples from traces (Figures 1(b), 4(b,e), 6(b,e,h,k)).
//! * [`ensemble`] — multi-run ensembles and stability measurement.
//! * [`diagnosis`] — the bottleneck detectors the paper's three case
//!   studies demonstrate: harmonic modes, right-shoulder read anomalies,
//!   progressive per-phase deterioration, and rank-serialized metadata.
//! * [`attribution`] — fault-class attribution: per-rank and per-stripe
//!   tail decomposition that turns a histogram anomaly into a verdict
//!   (straggler node, slow OST, flaky fabric, drop/retry, MDS stall,
//!   metadata storm).
//! * [`report`] — a human-readable analysis report per trace.

pub mod attribution;
pub mod bootstrap;
pub mod compare;
pub mod diagnosis;
pub mod distance;
pub mod empirical;
pub mod ensemble;
pub mod hist;
pub mod kde;
pub mod lln;
pub mod loghist;
pub mod modes;
pub mod order_stats;
pub mod rates;
pub mod report;

pub use attribution::{FaultClass, TailProfile};
pub use diagnosis::{diagnose, Finding};
pub use empirical::EmpiricalDist;
pub use ensemble::Ensemble;
pub use hist::Histogram;
pub use loghist::LogHistogram;
pub use modes::Mode;
