//! Empirical distributions: the sorted-sample view of an ensemble, with
//! ECDF, quantiles, and moments.

use serde::{Deserialize, Serialize};

/// An empirical distribution over a set of `f64` observations.
///
/// ```
/// use pio_core::empirical::EmpiricalDist;
/// let d = EmpiricalDist::new(&[3.0, 1.0, 4.0, 1.0, 5.0]);
/// assert_eq!(d.median(), 3.0);
/// assert_eq!(d.cdf(1.0), 0.4);
/// assert_eq!(d.max(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDist {
    /// Samples, sorted ascending.
    sorted: Vec<f64>,
}

impl EmpiricalDist {
    /// Build from samples (copied and sorted). NaNs are rejected.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "empty distribution");
        assert!(samples.iter().all(|v| !v.is_nan()), "NaN sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        EmpiricalDist { sorted }
    }

    /// Build from a vector that is already sorted ascending (checked in
    /// debug builds only) — no copy, no re-sort.
    pub fn from_sorted_vec(sorted: Vec<f64>) -> Self {
        assert!(!sorted.is_empty(), "empty distribution");
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "samples not sorted"
        );
        EmpiricalDist { sorted }
    }

    /// Replace the contents with `samples` (copied and sorted), reusing
    /// this distribution's allocation — the bootstrap loop's resample
    /// buffer, refilled thousands of times without reallocating.
    pub fn refill_from(&mut self, samples: &[f64]) {
        assert!(!samples.is_empty(), "empty distribution");
        assert!(samples.iter().all(|v| !v.is_nan()), "NaN sample");
        self.sorted.clear();
        self.sorted.extend_from_slice(samples);
        self.sorted.sort_by(f64::total_cmp);
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation — the N-th order statistic that bounds a
    /// synchronous phase.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Empirical CDF: fraction of samples ≤ `t`.
    pub fn cdf(&self, t: f64) -> f64 {
        // partition_point returns count of samples <= t via total order.
        let k = self.sorted.partition_point(|&x| x <= t);
        k as f64 / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation; `q` clamped to `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= n {
            self.sorted[n - 1]
        } else {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        }
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.sorted.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/µ (`None` for zero mean).
    pub fn cv(&self) -> Option<f64> {
        let m = self.mean();
        if m == 0.0 {
            None
        } else {
            Some(self.std_dev() / m.abs())
        }
    }

    /// Skewness (0 for symmetric; `None` for zero variance).
    pub fn skewness(&self) -> Option<f64> {
        let m = self.mean();
        let n = self.sorted.len() as f64;
        let m2 = self.variance();
        if m2 <= 0.0 {
            return None;
        }
        let m3 = self.sorted.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
        Some(m3 / m2.powf(1.5))
    }

    /// Excess kurtosis (`None` for zero variance).
    pub fn excess_kurtosis(&self) -> Option<f64> {
        let m = self.mean();
        let n = self.sorted.len() as f64;
        let m2 = self.variance();
        if m2 <= 0.0 {
            return None;
        }
        let m4 = self.sorted.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
        Some(m4 / (m2 * m2) - 3.0)
    }

    /// Fraction of samples strictly above `t`.
    pub fn fraction_above(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Tail ratio `quantile(q) / median` — a scale-free heavy-tail measure.
    pub fn tail_ratio(&self, q: f64) -> f64 {
        let med = self.median();
        if med <= 0.0 {
            return f64::INFINITY;
        }
        self.quantile(q) / med
    }

    /// Progress curve `(t, F(t))` evaluated at each distinct sample — the
    /// paper's Figure 5(a) "fraction of I/O ops complete versus time".
    pub fn progress_curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> EmpiricalDist {
        EmpiricalDist::new(&[5.0, 1.0, 3.0, 2.0, 4.0])
    }

    #[test]
    fn order_and_extremes() {
        let d = dist();
        assert_eq!(d.n(), 5);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
        assert_eq!(d.samples(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn cdf_steps_correctly() {
        let d = dist();
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.2);
        assert_eq!(d.cdf(3.5), 0.6);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = dist();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 5.0);
        assert_eq!(d.median(), 3.0);
        assert!((d.quantile(0.25) - 2.0).abs() < 1e-12);
        assert!((d.iqr() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn moments_match_closed_form() {
        let d = dist();
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 2.0);
        assert!((d.std_dev() - 2f64.sqrt()).abs() < 1e-12);
        assert!(d.skewness().unwrap().abs() < 1e-12, "symmetric");
        assert!((d.cv().unwrap() - 2f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_edge_cases() {
        let d = EmpiricalDist::new(&[2.0, 2.0, 2.0]);
        assert!(d.skewness().is_none());
        assert!(d.excess_kurtosis().is_none());
        assert_eq!(d.iqr(), 0.0);
    }

    #[test]
    fn tail_measures() {
        let mut samples = vec![1.0; 99];
        samples.push(100.0);
        let d = EmpiricalDist::new(&samples);
        assert!((d.fraction_above(1.0) - 0.01).abs() < 1e-12);
        assert!(d.tail_ratio(0.999) > 50.0);
        assert!((d.tail_ratio(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn progress_curve_is_monotone_and_complete() {
        let d = dist();
        let pc = d.progress_curve();
        assert_eq!(pc.len(), 5);
        assert_eq!(pc[0], (1.0, 0.2));
        assert_eq!(pc[4], (5.0, 1.0));
        assert!(pc.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn single_sample_dist() {
        let d = EmpiricalDist::new(&[7.0]);
        assert_eq!(d.median(), 7.0);
        assert_eq!(d.quantile(0.3), 7.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        EmpiricalDist::new(&[]);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        EmpiricalDist::new(&[1.0, f64::NAN]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// CDF is monotone nondecreasing, 0 before min, 1 at max.
        #[test]
        fn cdf_is_a_cdf(samples in proptest::collection::vec(-50.0f64..50.0, 1..200)) {
            let d = EmpiricalDist::new(&samples);
            prop_assert_eq!(d.cdf(d.min() - 1.0), 0.0);
            prop_assert_eq!(d.cdf(d.max()), 1.0);
            let mut last = 0.0;
            let mut t = d.min() - 1.0;
            while t < d.max() + 1.0 {
                let c = d.cdf(t);
                prop_assert!(c >= last);
                last = c;
                t += 0.37;
            }
        }

        /// Quantile is a (pseudo-)inverse of the CDF and is monotone.
        #[test]
        fn quantile_monotone(samples in proptest::collection::vec(-50.0f64..50.0, 2..200)) {
            let d = EmpiricalDist::new(&samples);
            let mut last = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let v = d.quantile(q);
                prop_assert!(v >= last);
                prop_assert!(v >= d.min() && v <= d.max());
                last = v;
            }
        }

        /// Mean lies within [min, max]; variance nonnegative.
        #[test]
        fn moment_bounds(samples in proptest::collection::vec(-50.0f64..50.0, 1..200)) {
            let d = EmpiricalDist::new(&samples);
            prop_assert!(d.mean() >= d.min() - 1e-9 && d.mean() <= d.max() + 1e-9);
            prop_assert!(d.variance() >= 0.0);
        }
    }
}
