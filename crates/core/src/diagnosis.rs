//! Bottleneck detectors — the paper's methodology distilled into code.
//!
//! Each of the paper's three case studies reads a different signature out
//! of the ensemble:
//!
//! * **Harmonic modes** (IOR, Fig. 1c): peaks at T, T/2, T/4 ⇒ one or two
//!   tasks per node monopolize node I/O resources.
//! * **Right shoulder** (MADbench, Fig. 4c): a read histogram whose slow
//!   tail stretches far beyond the main mode ⇒ pathological middleware
//!   behaviour (the strided read-ahead bug).
//! * **Progressive deterioration** (MADbench, Fig. 5a): per-phase CDFs
//!   getting worse phase over phase ⇒ cumulative resource exhaustion
//!   (read-ahead window growth under memory pressure).
//! * **Serialized rank** (GCRM, Fig. 6g): one rank owning the bulk of
//!   metadata time ⇒ serialized middleware metadata, fixed by
//!   aggregation.

use crate::attribution::{
    attribute_data_tail_windowed, attribute_meta_tail, Attribution, DataTailEvidence, FaultClass,
    TailEvent, TailProfile, WindowedProfile, TAIL_HIST_HI, TAIL_HIST_LO,
};
use crate::empirical::EmpiricalDist;
use crate::modes::{find_modes, harmonic_structure, Mode};
use crate::rates::{durations, per_rank_io_time};
use pio_des::hist::LogHistogram;
use pio_trace::{CallKind, Trace};

/// Detector thresholds (defaults chosen to match the paper's examples).
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Minimum samples before any distributional claim.
    pub min_samples: usize,
    /// KDE mode floor as a fraction of the tallest peak.
    pub mode_height_frac: f64,
    /// Relative tolerance when matching harmonic locations.
    pub harmonic_tol: f64,
    /// Right shoulder: p99/median ratio that counts as pathological.
    pub shoulder_tail_ratio: f64,
    /// Right shoulder: minimum mass beyond 2× median.
    pub shoulder_mass: f64,
    /// Progressive deterioration: median growth factor first→last phase.
    pub deterioration_factor: f64,
    /// Serialized rank: share of total I/O time concentrated in one rank.
    pub serialized_share: f64,
    /// Serialized rank: minimum operation count before the concentration
    /// counts as the "many small serialized operations" pathology (a
    /// handful of large aggregated writes is the *fix*, not the bug).
    pub serialized_min_ops: usize,
    /// Tail cut as a multiple of the class median: events slower than
    /// `tail_cut_ratio × median` belong to the tail. The single source
    /// of truth for every shoulder/tail detector, batch and streaming.
    pub tail_cut_ratio: f64,
    /// Rank-correlated tail: fraction of the tail mass the culprit rank
    /// set must own.
    pub tail_rank_share: f64,
    /// Rank-correlated tail: ceiling on the culprit set as a fraction of
    /// observed ranks.
    pub tail_rank_frac: f64,
    /// Rank-correlated tail: culprit per-op mean must exceed the rest by
    /// this factor (separates a straggler node, slow on *everything*,
    /// from harmonic arbitration losers).
    pub tail_mean_ratio: f64,
    /// Minimum tail events before any tail-decomposition claim.
    pub tail_min_events: usize,
    /// Storage-target tail: share of tail mass one stripe residue class
    /// must own.
    pub target_tail_share: f64,
    /// Metadata shoulder: writes below this byte count form the small
    /// size class (the paper's sub-3KB GCRM writes).
    pub small_write_bytes: u64,
    /// Metadata shoulder: small-class share of total write time that
    /// counts as material.
    pub small_time_share: f64,
    /// Metadata shoulder: serialization check — small-class busy seconds
    /// divided by the small-class wall-clock span must not exceed this
    /// (parallel small writes overlap; serialized ones do not).
    pub small_overlap: f64,
    /// Flaky fabric: minimum periodic bursts before the tail counts as
    /// duty-cycled.
    pub flaky_min_bursts: usize,
    /// Flaky fabric: ceiling on the burst-gap coefficient of variation.
    pub flaky_period_cv: f64,
    /// Stripe size used to fold offsets onto storage targets.
    pub stripe_bytes: u64,
    /// Windowed attribution: width of one evidence window, simulated
    /// seconds. A fault that clears mid-run is localized to the windows
    /// it was live in.
    pub attr_window_s: f64,
    /// Windowed attribution: window count ceiling. Records past the
    /// covered span pool into the last window (bounded memory, graceful
    /// localization loss on long runs).
    pub attr_max_windows: usize,
    /// Compound attribution: a residue must own at least this fraction
    /// of the tail mass before a second class (or an ambiguity) is
    /// claimed — keeps single-fault runs single-class.
    pub compound_share: f64,
}

impl Thresholds {
    /// The duration beyond which an event belongs to the tail, given the
    /// class median.
    pub fn tail_cut(&self, median: f64) -> f64 {
        self.tail_cut_ratio * median
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            min_samples: 32,
            mode_height_frac: 0.10,
            harmonic_tol: 0.18,
            shoulder_tail_ratio: 4.0,
            shoulder_mass: 0.02,
            deterioration_factor: 1.5,
            serialized_share: 0.25,
            serialized_min_ops: 64,
            tail_cut_ratio: 2.0,
            tail_rank_share: 0.70,
            tail_rank_frac: 0.25,
            tail_mean_ratio: 2.0,
            tail_min_events: 16,
            target_tail_share: 0.60,
            small_write_bytes: 3072,
            small_time_share: 0.05,
            small_overlap: 1.5,
            flaky_min_bursts: 10,
            flaky_period_cv: 0.35,
            stripe_bytes: 1 << 20,
            attr_window_s: 2.0,
            attr_max_windows: 16,
            compound_share: 0.25,
        }
    }
}

/// One diagnostic finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Modes at T, T/2, … ⇒ intra-node I/O serialization.
    HarmonicModes {
        /// Which call class exhibits it.
        kind: CallKind,
        /// The fundamental (slowest) mode location, seconds.
        fundamental: f64,
        /// Harmonic orders present (1 = T, 2 = T/2, 4 = T/4, …).
        orders: Vec<u32>,
    },
    /// A slow tail far beyond the main mode ⇒ middleware pathology.
    RightShoulder {
        /// Which call class exhibits it.
        kind: CallKind,
        /// Median duration, seconds.
        median: f64,
        /// 99th percentile duration, seconds.
        p99: f64,
        /// Fraction of events slower than the tail cut.
        tail_mass: f64,
        /// What the tail decomposition points at, when the evidence
        /// supports anything: a single class, a compound verdict naming
        /// several, or an ambiguous candidate list. `None` keeps the
        /// paper's default middleware-pathology reading.
        attribution: Option<Attribution>,
    },
    /// Per-phase medians growing ⇒ cumulative resource exhaustion.
    ProgressiveDeterioration {
        /// Which call class exhibits it.
        kind: CallKind,
        /// `(phase, median seconds)` for the affected phases.
        phase_medians: Vec<(u32, f64)>,
        /// Last/first median ratio.
        factor: f64,
    },
    /// One rank owns a dominant share of (metadata) I/O time.
    SerializedRank {
        /// The dominating rank.
        rank: u32,
        /// Its share of total I/O time in the examined class.
        share: f64,
        /// Whether the concentration is in metadata operations.
        metadata: bool,
    },
    /// The ensemble tail concentrates on a few ranks that are slow on
    /// everything ⇒ straggler client node(s).
    RankCorrelatedTail {
        /// Which call class exhibits it.
        kind: CallKind,
        /// The culprit ranks, ascending.
        ranks: Vec<u32>,
        /// Culprits as a fraction of observed ranks.
        rank_frac: f64,
        /// Fraction of tail mass the culprits own.
        tail_share: f64,
        /// Culprit per-op mean over the rest's per-op mean.
        mean_ratio: f64,
    },
    /// A serialized sub-3KB write class owned by one rank ⇒ the paper's
    /// GCRM metadata storm.
    MetadataShoulder {
        /// Operations in the small size class.
        small_ops: u64,
        /// Small-class share of total write time.
        small_share: f64,
        /// The rank owning the class.
        rank: u32,
        /// Its share of small-class time.
        rank_share: f64,
    },
}

impl Finding {
    /// The attribution this finding carries, if any. Intrinsic (and
    /// always single-class) for the dedicated detectors; carried
    /// explicitly — possibly compound or ambiguous — on shoulders.
    pub fn attribution(&self) -> Option<Attribution> {
        match self {
            Finding::RightShoulder { attribution, .. } => attribution.clone(),
            Finding::RankCorrelatedTail { .. } => {
                Some(Attribution::single(FaultClass::StragglerNode))
            }
            Finding::MetadataShoulder { .. } => {
                Some(Attribution::single(FaultClass::MetadataStorm))
            }
            Finding::SerializedRank { metadata: true, .. } => {
                Some(Attribution::single(FaultClass::MetadataStorm))
            }
            _ => None,
        }
    }
}

/// A whole-run verdict assembled from every finding's attribution —
/// what the fault matrix asserts on and what fleetd reports per job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// No finding carried an attribution.
    Clean,
    /// Exactly one fault class implicated, confidently.
    Single(FaultClass),
    /// Several classes implicated, each independently evidenced
    /// (ascending, deduplicated).
    Compound(Vec<FaultClass>),
    /// The evidence could not separate these candidates (ascending,
    /// deduplicated; the confidently-implicated classes, if any, are
    /// included so the list is the complete suspect set).
    Ambiguous(Vec<FaultClass>),
}

impl Verdict {
    /// Every implicated (or candidate) class, ascending.
    pub fn classes(&self) -> &[FaultClass] {
        match self {
            Verdict::Clean => &[],
            Verdict::Single(c) => std::slice::from_ref(c),
            Verdict::Compound(cs) | Verdict::Ambiguous(cs) => cs,
        }
    }

    /// Whether `class` appears, confidently or as a candidate.
    pub fn implicates(&self, class: FaultClass) -> bool {
        self.classes().contains(&class)
    }

    /// Whether the verdict names candidates it could not separate.
    pub fn is_ambiguous(&self) -> bool {
        matches!(self, Verdict::Ambiguous(_))
    }

    /// Stable identifier: `"clean"`, `"slow-ost"`,
    /// `"mds-stall+slow-ost"`, `"ambiguous(flaky-fabric|straggler-node)"`
    /// (matrix tables, CI artifacts, fleetd reports).
    pub fn label(&self) -> String {
        match self {
            Verdict::Clean => "clean".into(),
            Verdict::Single(c) => c.name().into(),
            Verdict::Compound(cs) => cs.iter().map(|c| c.name()).collect::<Vec<_>>().join("+"),
            Verdict::Ambiguous(cs) => format!(
                "ambiguous({})",
                cs.iter().map(|c| c.name()).collect::<Vec<_>>().join("|")
            ),
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Assemble the whole-run [`Verdict`] from a finding set: the union of
/// every finding's attribution. Any ambiguous attribution makes the run
/// verdict ambiguous (listing all candidates plus the confident
/// classes); otherwise the confident classes stand alone.
pub fn run_verdict(findings: &[Finding]) -> Verdict {
    let mut confident: Vec<FaultClass> = Vec::new();
    let mut candidates: Vec<FaultClass> = Vec::new();
    for f in findings {
        if let Some(a) = f.attribution() {
            if a.ambiguous {
                candidates.extend(a.classes);
            } else {
                confident.extend(a.classes);
            }
        }
    }
    if !candidates.is_empty() {
        candidates.extend(confident);
        candidates.sort_unstable();
        candidates.dedup();
        return Verdict::Ambiguous(candidates);
    }
    confident.sort_unstable();
    confident.dedup();
    match confident.len() {
        0 => Verdict::Clean,
        1 => Verdict::Single(confident[0]),
        _ => Verdict::Compound(confident),
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::HarmonicModes {
                kind,
                fundamental,
                orders,
            } => write!(
                f,
                "{}: harmonic modes at T={fundamental:.2}s with orders {orders:?} — \
                 intra-node I/O serialization (one or two tasks per node \
                 monopolize node I/O)",
                kind.name()
            ),
            Finding::RightShoulder {
                kind,
                median,
                p99,
                tail_mass,
                attribution,
            } => {
                write!(
                    f,
                    "{}: right shoulder — median {median:.2}s but p99 {p99:.2}s \
                     ({:.1}% of events beyond the tail cut); ",
                    kind.name(),
                    tail_mass * 100.0
                )?;
                match attribution {
                    Some(attr) => write!(f, "attributed to {attr}"),
                    None => write!(f, "suspect middleware read-ahead/caching pathology"),
                }
            }
            Finding::ProgressiveDeterioration {
                kind,
                phase_medians,
                factor,
            } => write!(
                f,
                "{}: progressive per-phase deterioration ({} phases, median \
                 grows {factor:.1}x from first to last) — cumulative resource \
                 exhaustion; phases: {phase_medians:?}",
                kind.name(),
                phase_medians.len()
            ),
            Finding::SerializedRank {
                rank,
                share,
                metadata,
            } => write!(
                f,
                "rank {rank} owns {:.0}% of {} time — serialized {}; \
                 aggregate into fewer, larger operations",
                share * 100.0,
                if *metadata { "metadata" } else { "I/O" },
                if *metadata { "metadata writes" } else { "I/O" }
            ),
            Finding::RankCorrelatedTail {
                kind,
                ranks,
                rank_frac,
                tail_share,
                mean_ratio,
            } => write!(
                f,
                "{}: rank-correlated tail — ranks {ranks:?} ({:.0}% of ranks) \
                 own {:.0}% of tail mass and run {mean_ratio:.1}x slower per \
                 op — straggler client node(s)",
                kind.name(),
                rank_frac * 100.0,
                tail_share * 100.0
            ),
            Finding::MetadataShoulder {
                small_ops,
                small_share,
                rank,
                rank_share,
            } => write!(
                f,
                "small-write shoulder — {small_ops} sub-3KB writes take \
                 {:.0}% of write time, rank {rank} owns {:.0}% of them, \
                 serially — metadata storm; aggregate into fewer, larger \
                 operations",
                small_share * 100.0,
                rank_share * 100.0
            ),
        }
    }
}

/// Harmonic verdict from already-extracted modes. Shared by the batch
/// detector (KDE modes) and the streaming path in `pio-ingest` (modes from
/// a windowed log-histogram grid).
pub fn harmonic_verdict(kind: CallKind, modes: &[Mode], th: &Thresholds) -> Option<Finding> {
    let h = harmonic_structure(modes, th.harmonic_tol)?;
    Some(Finding::HarmonicModes {
        kind,
        fundamental: h.fundamental,
        orders: h.orders,
    })
}

/// Harmonic-mode detector over one call class.
pub fn detect_harmonics(trace: &Trace, kind: CallKind, th: &Thresholds) -> Option<Finding> {
    let samples = durations(trace, kind, None);
    if samples.len() < th.min_samples {
        return None;
    }
    let dist = EmpiricalDist::new(&samples);
    if dist.variance() <= 0.0 {
        return None;
    }
    let modes = find_modes(&dist, 512, th.mode_height_frac);
    harmonic_verdict(kind, &modes, th)
}

/// Right-shoulder verdict from summary statistics (`n` samples with the
/// given median, p99, and mass beyond the tail cut). Shared by the batch
/// detector (exact order statistics) and the streaming path (sketch
/// estimates). `attribution` carries the tail decomposition's verdict
/// when the caller has one.
pub fn shoulder_verdict(
    kind: CallKind,
    n: usize,
    median: f64,
    p99: f64,
    tail_mass: f64,
    attribution: Option<Attribution>,
    th: &Thresholds,
) -> Option<Finding> {
    if n < th.min_samples || median <= 0.0 {
        return None;
    }
    if p99 / median >= th.shoulder_tail_ratio && tail_mass >= th.shoulder_mass {
        Some(Finding::RightShoulder {
            kind,
            median,
            p99,
            tail_mass,
            attribution,
        })
    } else {
        None
    }
}

/// Right-shoulder (pathological slow tail) detector. A detected shoulder
/// is handed to the tail-decomposition machinery for attribution.
pub fn detect_right_shoulder(trace: &Trace, kind: CallKind, th: &Thresholds) -> Option<Finding> {
    let samples = durations(trace, kind, None);
    if samples.len() < th.min_samples {
        return None;
    }
    let dist = EmpiricalDist::new(&samples);
    let median = dist.median();
    let p99 = dist.quantile(0.99);
    let tail_mass = dist.fraction_above(th.tail_cut(median));
    let attribution = shoulder_verdict(kind, samples.len(), median, p99, tail_mass, None, th)
        .is_some()
        .then(|| attribute_shoulder(trace, kind, median, th))
        .flatten();
    shoulder_verdict(kind, samples.len(), median, p99, tail_mass, attribution, th)
}

/// Decompose a detected shoulder's tail and name the fault class(es)
/// the evidence points at, using the full windowed evidence model:
/// whole-run profile + fine histogram, per-window slices, and
/// rank-tagged tail events.
fn attribute_shoulder(
    trace: &Trace,
    kind: CallKind,
    median: f64,
    th: &Thresholds,
) -> Option<Attribution> {
    let profile = TailProfile::from_trace(trace, kind, th.stripe_bytes);
    if matches!(kind, CallKind::MetaRead | CallKind::MetaWrite) {
        return Some(Attribution::single(attribute_meta_tail(&profile, th)));
    }
    let cut = th.tail_cut(median);
    let mut hist = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 96);
    let mut windows =
        WindowedProfile::new(th.attr_window_s, th.attr_max_windows, th.stripe_bytes, 96);
    let mut events = Vec::new();
    for r in trace.records.iter().filter(|r| r.call == kind) {
        let secs = r.secs();
        hist.add_clamped(secs);
        windows.add(r.rank, r.offset, r.start_ns, secs);
        if secs > cut {
            events.push(TailEvent {
                start_ns: r.start_ns,
                rank: r.rank,
                secs,
            });
        }
    }
    let ev = DataTailEvidence {
        profile: &profile,
        hist: &hist,
        windows: Some(&windows),
        events: Some(&events),
    };
    attribute_data_tail_windowed(&ev, median, th)
}

/// Rank-correlated-tail verdict from an already-built [`TailProfile`]
/// and tail cut. Shared by the batch detector, the online diagnoser,
/// and the snapshot path.
pub fn rank_tail_verdict(
    kind: CallKind,
    profile: &TailProfile,
    cut: f64,
    th: &Thresholds,
) -> Option<Finding> {
    let rt = profile.rank_correlated(cut, th)?;
    Some(Finding::RankCorrelatedTail {
        kind,
        ranks: rt.ranks,
        rank_frac: rt.rank_frac,
        tail_share: rt.tail_share,
        mean_ratio: rt.mean_ratio,
    })
}

/// Rank-correlated-tail detector: fires when ≥`tail_rank_share` of the
/// ensemble tail mass concentrates on ≤`tail_rank_frac` of the ranks
/// *and* those ranks are slower across the board, naming the culprit
/// rank set.
pub fn detect_rank_correlated_tail(
    trace: &Trace,
    kind: CallKind,
    th: &Thresholds,
) -> Option<Finding> {
    let samples = durations(trace, kind, None);
    if samples.len() < th.min_samples {
        return None;
    }
    let median = EmpiricalDist::new(&samples).median();
    if median <= 0.0 {
        return None;
    }
    let profile = TailProfile::from_trace(trace, kind, th.stripe_bytes);
    rank_tail_verdict(kind, &profile, th.tail_cut(median), th)
}

/// Metadata-shoulder verdict from size-class aggregates: `small_ops`
/// operations below the small-write cut taking `small_secs` of
/// `write_secs` total write-direction time, with `top = (rank, secs)`
/// the heaviest small-writer and `span_secs` the small class's
/// wall-clock extent. Shared by the batch detector and the streaming
/// small-write tracker.
pub fn metadata_shoulder_verdict(
    small_ops: u64,
    small_secs: f64,
    write_secs: f64,
    top: Option<(u32, f64)>,
    span_secs: f64,
    th: &Thresholds,
) -> Option<Finding> {
    if (small_ops as usize) < th.serialized_min_ops || small_secs <= 0.0 || write_secs <= 0.0 {
        return None;
    }
    let small_share = small_secs / write_secs;
    if small_share < th.small_time_share {
        return None;
    }
    let (rank, top_secs) = top?;
    let rank_share = top_secs / small_secs;
    if rank_share < th.serialized_share {
        return None;
    }
    // Serialization check: a parallel small-write class overlaps itself
    // (busy time ≫ span is impossible for one serialized actor).
    if span_secs <= 0.0 || small_secs / span_secs > th.small_overlap {
        return None;
    }
    Some(Finding::MetadataShoulder {
        small_ops,
        small_share,
        rank,
        rank_share,
    })
}

/// Size-class-split shoulder detector over sub-`small_write_bytes`
/// write-direction operations (the paper's GCRM signature: thousands of
/// serialized sub-3KB task-0 writes).
pub fn detect_metadata_shoulder(trace: &Trace, th: &Thresholds) -> Option<Finding> {
    let mut small_ops = 0u64;
    let mut small_secs = 0.0;
    let mut write_secs = 0.0;
    let mut per_rank: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let (mut first_ns, mut last_ns) = (u64::MAX, 0u64);
    for r in &trace.records {
        if !matches!(r.call, CallKind::Write | CallKind::MetaWrite) {
            continue;
        }
        let secs = r.secs();
        write_secs += secs;
        if r.bytes > 0 && r.bytes < th.small_write_bytes {
            small_ops += 1;
            small_secs += secs;
            *per_rank.entry(r.rank).or_insert(0.0) += secs;
            first_ns = first_ns.min(r.start_ns);
            last_ns = last_ns.max(r.end_ns);
        }
    }
    let top = per_rank
        .iter()
        .map(|(&r, &s)| (r, s))
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
    let span = if last_ns > first_ns {
        (last_ns - first_ns) as f64 / 1e9
    } else {
        0.0
    };
    metadata_shoulder_verdict(small_ops, small_secs, write_secs, top, span, th)
}

/// Deterioration verdict over ordered `(group, median)` pairs: fires when
/// the longest run of consecutive increases ending at the last entry spans
/// at least 3 groups and grows by `deterioration_factor`. Shared by the
/// batch detectors and the streaming per-phase path.
pub fn deterioration_verdict(
    kind: CallKind,
    medians: &[(u32, f64)],
    th: &Thresholds,
) -> Option<Finding> {
    if medians.len() < 3 {
        return None;
    }
    let mut start = medians.len() - 1;
    while start > 0 && medians[start - 1].1 < medians[start].1 {
        start -= 1;
    }
    let run = &medians[start..];
    if run.len() < 3 {
        return None;
    }
    let factor = run.last().unwrap().1 / run[0].1.max(1e-300);
    if factor >= th.deterioration_factor {
        Some(Finding::ProgressiveDeterioration {
            kind,
            phase_medians: run.to_vec(),
            factor,
        })
    } else {
        None
    }
}

/// Progressive per-phase deterioration detector.
pub fn detect_progressive_deterioration(
    trace: &Trace,
    kind: CallKind,
    th: &Thresholds,
) -> Option<Finding> {
    let n_phases = trace.phase_count();
    let mut phase_medians = Vec::new();
    for p in 0..n_phases {
        let samples: Vec<f64> = trace
            .in_phase(p)
            .filter(|r| r.call == kind)
            .map(|r| r.secs())
            .collect();
        if samples.len() >= th.min_samples.min(8) {
            phase_medians.push((p, EmpiricalDist::new(&samples).median()));
        }
    }
    deterioration_verdict(kind, &phase_medians, th)
}

/// Progressive deterioration over explicitly ordered sample groups
/// (e.g. "all ranks' m-th middle-phase read" — free-running sections
/// have no per-iteration barrier phases to group by).
pub fn detect_deterioration_in_groups(
    kind: CallKind,
    groups: &[Vec<f64>],
    th: &Thresholds,
) -> Option<Finding> {
    let medians: Vec<(u32, f64)> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.len() >= th.min_samples.min(8))
        .map(|(i, g)| (i as u32, EmpiricalDist::new(g).median()))
        .collect();
    deterioration_verdict(kind, &medians, th)
}

/// Serialized-metadata verdict from per-rank aggregates: `per_rank` holds
/// `(rank, metadata seconds, metadata ops)` for the candidate heavy ranks
/// (need not be exhaustive — only the maximum matters), `meta_total` the
/// total metadata seconds, and `all_io_time` the total I/O seconds.
/// Shared by the batch detector and the streaming heavy-hitter path.
pub fn serialized_meta_verdict(
    per_rank: &[(u32, f64, usize)],
    meta_total: f64,
    ranks: u32,
    all_io_time: f64,
    th: &Thresholds,
) -> Option<Finding> {
    if meta_total <= 0.0 {
        return None;
    }
    let &(rank, t, ops) = per_rank.iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
    let share = t / meta_total;
    // Require genuine concentration: far above 1/ranks, made of *many*
    // operations (the serialization pathology — a handful of large
    // aggregated writes is the fix, not the bug), and material against
    // total I/O time.
    let fair = 1.0 / ranks.max(1) as f64;
    if share >= th.serialized_share
        && share > 10.0 * fair
        && ops >= th.serialized_min_ops
        && t / all_io_time.max(1e-300) >= 0.05
    {
        Some(Finding::SerializedRank {
            rank,
            share,
            metadata: true,
        })
    } else {
        None
    }
}

/// Serialized-rank detector (metadata first, then all I/O).
pub fn detect_serialized_rank(trace: &Trace, th: &Thresholds) -> Option<Finding> {
    // Metadata concentration.
    let mut meta: std::collections::HashMap<u32, (f64, usize)> = std::collections::HashMap::new();
    let mut meta_total = 0.0;
    for r in trace
        .records
        .iter()
        .filter(|r| matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite))
    {
        let e = meta.entry(r.rank).or_insert((0.0, 0));
        e.0 += r.secs();
        e.1 += 1;
        meta_total += r.secs();
    }
    let per_rank: Vec<(u32, f64, usize)> = meta.iter().map(|(&r, &(t, ops))| (r, t, ops)).collect();
    let all_io: f64 = trace
        .records
        .iter()
        .filter(|r| r.call.is_io())
        .map(|r| r.secs())
        .sum();
    if let Some(f) = serialized_meta_verdict(&per_rank, meta_total, trace.meta.ranks, all_io, th) {
        return Some(f);
    }
    // General I/O concentration.
    let per_rank = per_rank_io_time(trace);
    let total: f64 = per_rank.iter().map(|&(_, t)| t).sum();
    if total <= 0.0 || per_rank.len() < 4 {
        return None;
    }
    let (rank, t) = per_rank
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))?;
    let share = t / total;
    let fair = 1.0 / per_rank.len() as f64;
    if share >= th.serialized_share && share > 10.0 * fair {
        Some(Finding::SerializedRank {
            rank,
            share,
            metadata: false,
        })
    } else {
        None
    }
}

/// Run every detector over the natural call classes.
pub fn diagnose(trace: &Trace) -> Vec<Finding> {
    diagnose_with(trace, &Thresholds::default())
}

/// Run every detector with explicit thresholds.
pub fn diagnose_with(trace: &Trace, th: &Thresholds) -> Vec<Finding> {
    let mut findings = Vec::new();
    for kind in [CallKind::Write, CallKind::Read] {
        if let Some(f) = detect_harmonics(trace, kind, th) {
            findings.push(f);
        }
        if let Some(f) = detect_right_shoulder(trace, kind, th) {
            findings.push(f);
        }
        if let Some(f) = detect_progressive_deterioration(trace, kind, th) {
            findings.push(f);
        }
        if let Some(f) = detect_rank_correlated_tail(trace, kind, th) {
            findings.push(f);
        }
    }
    // Metadata call classes get the shoulder treatment too — an MDS
    // stall shows up here, not on the data classes.
    for kind in [CallKind::MetaRead, CallKind::MetaWrite] {
        if let Some(f) = detect_right_shoulder(trace, kind, th) {
            findings.push(f);
        }
    }
    if let Some(f) = detect_serialized_rank(trace, th) {
        findings.push(f);
    }
    if let Some(f) = detect_metadata_shoulder(trace, th) {
        findings.push(f);
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::{Record, TraceMeta};

    fn rec(rank: u32, call: CallKind, bytes: u64, t0: f64, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: (t0 * 1e9) as u64,
            end_ns: ((t0 + dur) * 1e9) as u64,
            phase,
        }
    }

    fn meta(ranks: u32) -> TraceMeta {
        TraceMeta {
            experiment: "diag".into(),
            platform: "test".into(),
            ranks,
            seed: 0,
        }
    }

    #[test]
    fn harmonic_trace_detected() {
        let mut t = Trace::new(meta(128));
        // Durations clustered at 8, 16, 32 (with slight spread).
        for i in 0..128u32 {
            let dur = match i % 8 {
                0 => 8.0,
                1..=2 => 16.0,
                _ => 32.0,
            } + (i % 5) as f64 * 0.05;
            t.push(rec(i, CallKind::Write, 1 << 20, 0.0, dur, 0));
        }
        let f = detect_harmonics(&t, CallKind::Write, &Thresholds::default()).expect("harmonics");
        match f {
            Finding::HarmonicModes {
                fundamental,
                ref orders,
                ..
            } => {
                assert!((fundamental - 32.0).abs() < 2.0);
                assert!(orders.contains(&2) || orders.contains(&4));
            }
            _ => panic!("wrong finding"),
        }
        // Display renders.
        assert!(f.to_string().contains("harmonic"));
    }

    #[test]
    fn unimodal_trace_not_harmonic() {
        let mut t = Trace::new(meta(64));
        for i in 0..64u32 {
            t.push(rec(
                i,
                CallKind::Write,
                1 << 20,
                0.0,
                10.0 + (i % 7) as f64 * 0.02,
                0,
            ));
        }
        assert!(detect_harmonics(&t, CallKind::Write, &Thresholds::default()).is_none());
    }

    #[test]
    fn right_shoulder_detected_on_buggy_reads() {
        let mut t = Trace::new(meta(64));
        for i in 0..60u32 {
            t.push(rec(
                i,
                CallKind::Read,
                1 << 20,
                0.0,
                15.0 + (i % 5) as f64 * 0.1,
                0,
            ));
        }
        // A handful of catastrophic reads (30–500 s).
        for (i, dur) in [(60u32, 90.0), (61, 200.0), (62, 450.0), (63, 35.0)] {
            t.push(rec(i, CallKind::Read, 1 << 20, 0.0, dur, 0));
        }
        let f =
            detect_right_shoulder(&t, CallKind::Read, &Thresholds::default()).expect("shoulder");
        match f {
            Finding::RightShoulder {
                median,
                p99,
                tail_mass,
                ..
            } => {
                assert!((median - 15.2).abs() < 1.0);
                assert!(p99 > 100.0);
                assert!(tail_mass > 0.03);
            }
            _ => panic!("wrong finding"),
        }
    }

    #[test]
    fn healthy_reads_have_no_shoulder() {
        let mut t = Trace::new(meta(64));
        for i in 0..64u32 {
            t.push(rec(
                i,
                CallKind::Read,
                1 << 20,
                0.0,
                15.0 + (i % 5) as f64 * 0.2,
                0,
            ));
        }
        assert!(detect_right_shoulder(&t, CallKind::Read, &Thresholds::default()).is_none());
    }

    #[test]
    fn progressive_deterioration_detected() {
        let mut t = Trace::new(meta(32));
        // Phases 0..5 with read medians 10, 10, 12, 20, 35, 60.
        let medians = [10.0, 10.0, 12.0, 20.0, 35.0, 60.0];
        for (p, &m) in medians.iter().enumerate() {
            for i in 0..32u32 {
                t.push(rec(
                    i,
                    CallKind::Read,
                    1 << 20,
                    p as f64 * 100.0,
                    m + (i % 3) as f64 * 0.1,
                    p as u32,
                ));
            }
        }
        let f = detect_progressive_deterioration(&t, CallKind::Read, &Thresholds::default())
            .expect("deterioration");
        match f {
            Finding::ProgressiveDeterioration {
                factor,
                ref phase_medians,
                ..
            } => {
                assert!(factor > 2.0, "{factor}");
                assert!(phase_medians.len() >= 4);
                assert_eq!(phase_medians.last().unwrap().0, 5);
            }
            _ => panic!("wrong finding"),
        }
    }

    #[test]
    fn grouped_deterioration_detector() {
        let growing: Vec<Vec<f64>> = [5.0, 6.0, 9.0, 16.0, 30.0]
            .iter()
            .map(|&m| (0..16).map(|i| m + (i % 3) as f64 * 0.05).collect())
            .collect();
        let f = detect_deterioration_in_groups(CallKind::Read, &growing, &Thresholds::default())
            .expect("must fire");
        match f {
            Finding::ProgressiveDeterioration { factor, .. } => assert!(factor > 3.0),
            _ => panic!("wrong finding"),
        }
        let flat: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..16).map(|i| 5.0 + (i % 3) as f64 * 0.05).collect())
            .collect();
        assert!(
            detect_deterioration_in_groups(CallKind::Read, &flat, &Thresholds::default()).is_none()
        );
    }

    #[test]
    fn flat_phases_not_deteriorating() {
        let mut t = Trace::new(meta(32));
        for p in 0..6u32 {
            for i in 0..32u32 {
                t.push(rec(
                    i,
                    CallKind::Read,
                    1 << 20,
                    p as f64 * 100.0,
                    10.0 + (i % 3) as f64 * 0.1,
                    p,
                ));
            }
        }
        assert!(
            detect_progressive_deterioration(&t, CallKind::Read, &Thresholds::default()).is_none()
        );
    }

    #[test]
    fn serialized_metadata_rank_detected() {
        let mut t = Trace::new(meta(256));
        // Rank 0 does 500 slow metadata writes; everyone does some data I/O.
        for i in 0..500 {
            t.push(rec(0, CallKind::MetaWrite, 2048, i as f64, 0.3, 0));
        }
        for i in 0..256u32 {
            t.push(rec(i, CallKind::Write, 1 << 20, 0.0, 1.0, 0));
        }
        let f = detect_serialized_rank(&t, &Thresholds::default()).expect("serialized");
        match f {
            Finding::SerializedRank {
                rank,
                share,
                metadata,
            } => {
                assert_eq!(rank, 0);
                assert!(share > 0.9);
                assert!(metadata);
            }
            _ => panic!("wrong finding"),
        }
    }

    #[test]
    fn balanced_trace_has_no_serialized_rank() {
        let mut t = Trace::new(meta(64));
        for i in 0..64u32 {
            t.push(rec(i, CallKind::Write, 1 << 20, 0.0, 1.0, 0));
            t.push(rec(i, CallKind::MetaWrite, 2048, 1.0, 0.01, 0));
        }
        assert!(detect_serialized_rank(&t, &Thresholds::default()).is_none());
    }

    #[test]
    fn diagnose_collects_multiple_findings() {
        let mut t = Trace::new(meta(256));
        // Harmonic writes + serialized metadata.
        for i in 0..128u32 {
            let dur = if i % 4 == 0 { 16.0 } else { 32.0 };
            t.push(rec(
                i,
                CallKind::Write,
                1 << 20,
                0.0,
                dur + (i % 5) as f64 * 0.03,
                0,
            ));
        }
        for i in 0..700 {
            t.push(rec(0, CallKind::MetaWrite, 2048, i as f64, 0.5, 0));
        }
        let findings = diagnose(&t);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::HarmonicModes { .. })),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::SerializedRank { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn empty_trace_diagnoses_nothing() {
        let t = Trace::new(meta(0));
        assert!(diagnose(&t).is_empty());
    }

    /// The default thresholds are the single source of truth for every
    /// consumer (batch, streaming, fault matrix, tests). Pin them so a
    /// drive-by edit cannot silently re-tune the whole stack.
    #[test]
    fn default_thresholds_are_pinned() {
        let th = Thresholds::default();
        assert_eq!(th.min_samples, 32);
        assert_eq!(th.mode_height_frac, 0.10);
        assert_eq!(th.harmonic_tol, 0.18);
        assert_eq!(th.shoulder_tail_ratio, 4.0);
        assert_eq!(th.shoulder_mass, 0.02);
        assert_eq!(th.deterioration_factor, 1.5);
        assert_eq!(th.serialized_share, 0.25);
        assert_eq!(th.serialized_min_ops, 64);
        assert_eq!(th.tail_cut_ratio, 2.0);
        assert_eq!(th.tail_rank_share, 0.70);
        assert_eq!(th.tail_rank_frac, 0.25);
        assert_eq!(th.tail_mean_ratio, 2.0);
        assert_eq!(th.tail_min_events, 16);
        assert_eq!(th.target_tail_share, 0.60);
        assert_eq!(th.small_write_bytes, 3072);
        assert_eq!(th.small_time_share, 0.05);
        assert_eq!(th.small_overlap, 1.5);
        assert_eq!(th.flaky_min_bursts, 10);
        assert_eq!(th.flaky_period_cv, 0.35);
        assert_eq!(th.stripe_bytes, 1 << 20);
        assert_eq!(th.attr_window_s, 2.0);
        assert_eq!(th.attr_max_windows, 16);
        assert_eq!(th.compound_share, 0.25);
        // The tail cut derives from the ratio — everyone must call this,
        // not re-derive "2× median" locally.
        assert_eq!(th.tail_cut(15.0), 30.0);
    }

    fn straggler_trace(ranks: u32, per_rank: usize, slow: &[u32]) -> Trace {
        let mut t = Trace::new(meta(ranks));
        for rank in 0..ranks {
            let dur = if slow.contains(&rank) { 0.8 } else { 0.02 };
            for i in 0..per_rank {
                t.push(rec(
                    rank,
                    CallKind::Read,
                    1 << 20,
                    i as f64,
                    dur + (i % 3) as f64 * 0.001,
                    0,
                ));
            }
        }
        t
    }

    #[test]
    fn rank_correlated_tail_names_the_stragglers() {
        let t = straggler_trace(16, 32, &[3, 11]);
        let f = detect_rank_correlated_tail(&t, CallKind::Read, &Thresholds::default())
            .expect("must fire");
        match &f {
            Finding::RankCorrelatedTail {
                ranks, mean_ratio, ..
            } => {
                assert_eq!(ranks, &vec![3, 11]);
                assert!(*mean_ratio > 10.0);
            }
            other => panic!("wrong finding {other:?}"),
        }
        assert_eq!(
            f.attribution(),
            Some(Attribution::single(FaultClass::StragglerNode))
        );
        assert!(f.to_string().contains("straggler"));
    }

    #[test]
    fn uniform_tail_is_not_rank_correlated() {
        // Every rank has the same occasional slow op.
        let mut t = Trace::new(meta(16));
        for rank in 0..16u32 {
            for i in 0..32 {
                let dur = if i % 8 == 0 { 0.8 } else { 0.02 };
                t.push(rec(rank, CallKind::Read, 1 << 20, i as f64, dur, 0));
            }
        }
        assert!(detect_rank_correlated_tail(&t, CallKind::Read, &Thresholds::default()).is_none());
    }

    #[test]
    fn metadata_shoulder_fires_on_serialized_small_writes() {
        let mut t = Trace::new(meta(64));
        // Rank 0: 300 serialized 2KB writes, back to back.
        for i in 0..300u64 {
            t.push(rec(0, CallKind::Write, 2048, i as f64 * 0.1, 0.1, 0));
        }
        // Everyone else: large writes.
        for rank in 0..64u32 {
            t.push(rec(rank, CallKind::Write, 8 << 20, 0.0, 2.0, 0));
        }
        let f = detect_metadata_shoulder(&t, &Thresholds::default()).expect("must fire");
        match &f {
            Finding::MetadataShoulder {
                small_ops,
                rank,
                rank_share,
                ..
            } => {
                assert_eq!(*small_ops, 300);
                assert_eq!(*rank, 0);
                assert!(*rank_share > 0.99);
            }
            other => panic!("wrong finding {other:?}"),
        }
        assert_eq!(
            f.attribution(),
            Some(Attribution::single(FaultClass::MetadataStorm))
        );
    }

    #[test]
    fn parallel_small_writes_are_not_a_metadata_shoulder() {
        // The same volume of small writes, issued concurrently by 64
        // ranks: busy time far exceeds the span, so the serialization
        // check must veto (and no rank dominates anyway).
        let mut t = Trace::new(meta(64));
        for rank in 0..64u32 {
            for i in 0..8u64 {
                t.push(rec(rank, CallKind::Write, 2048, i as f64 * 0.1, 0.1, 0));
            }
        }
        assert!(detect_metadata_shoulder(&t, &Thresholds::default()).is_none());
    }

    #[test]
    fn new_detectors_are_shuffle_invariant() {
        // Aggregation-based detectors must not care about record order:
        // culprit sets and size-class counts are integer-exact, so they
        // survive any permutation of the stream.
        let mut t = Trace::new(meta(16));
        for rank in 0..16u32 {
            let dur = if rank == 5 { 0.8 } else { 0.02 };
            for i in 0..24 {
                t.push(rec(rank, CallKind::Read, 1 << 20, i as f64, dur, 0));
            }
        }
        for i in 0..100u64 {
            t.push(rec(0, CallKind::Write, 2048, i as f64 * 0.1, 0.1, 0));
        }
        for rank in 0..16u32 {
            t.push(rec(rank, CallKind::Write, 8 << 20, 0.0, 1.0, 0));
        }
        let mut shuffled = t.clone();
        shuffled.records.reverse();
        shuffled.records.rotate_left(37);
        let th = Thresholds::default();
        for (a, b) in [
            (
                detect_rank_correlated_tail(&t, CallKind::Read, &th),
                detect_rank_correlated_tail(&shuffled, CallKind::Read, &th),
            ),
            (
                detect_metadata_shoulder(&t, &th),
                detect_metadata_shoulder(&shuffled, &th),
            ),
        ] {
            let a = a.expect("fires on original");
            let b = b.expect("fires on shuffled");
            assert_eq!(a.attribution(), b.attribution());
        }
    }

    #[test]
    fn shoulder_attribution_reaches_diagnose() {
        let t = straggler_trace(16, 32, &[5, 13]);
        let findings = diagnose(&t);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::RankCorrelatedTail { .. })),
            "{findings:?}"
        );
        // Every attributed finding in this trace must blame the node.
        for f in &findings {
            if let Some(attr) = f.attribution() {
                assert!(attr.is(FaultClass::StragglerNode), "{f}");
            }
        }
        assert_eq!(
            run_verdict(&findings),
            Verdict::Single(FaultClass::StragglerNode)
        );
    }

    #[test]
    fn run_verdict_assembles_from_findings() {
        assert_eq!(run_verdict(&[]), Verdict::Clean);
        let shoulder = |attr: Option<Attribution>| Finding::RightShoulder {
            kind: CallKind::Read,
            median: 1.0,
            p99: 10.0,
            tail_mass: 0.1,
            attribution: attr,
        };
        // Unattributed findings leave the run clean.
        assert_eq!(run_verdict(&[shoulder(None)]), Verdict::Clean);
        // Two single-class findings of different classes compound.
        let fs = [
            shoulder(Some(Attribution::single(FaultClass::SlowOst))),
            shoulder(Some(Attribution::single(FaultClass::MdsStall))),
        ];
        let v = run_verdict(&fs);
        assert_eq!(
            v,
            Verdict::Compound(vec![FaultClass::SlowOst, FaultClass::MdsStall])
        );
        assert_eq!(v.label(), "slow-ost+mds-stall");
        assert!(v.implicates(FaultClass::MdsStall) && !v.is_ambiguous());
        // An ambiguous attribution makes the run ambiguous, folding in
        // the confident classes as candidates.
        let fs = [
            shoulder(Some(Attribution::single(FaultClass::SlowOst))),
            shoulder(Some(Attribution::candidates(vec![
                FaultClass::FlakyFabric,
                FaultClass::StragglerNode,
            ]))),
        ];
        let v = run_verdict(&fs);
        assert_eq!(
            v,
            Verdict::Ambiguous(vec![
                FaultClass::SlowOst,
                FaultClass::FlakyFabric,
                FaultClass::StragglerNode,
            ])
        );
        assert_eq!(v.label(), "ambiguous(slow-ost|flaky-fabric|straggler-node)");
        // Duplicate classes collapse to a single verdict.
        let fs = [
            shoulder(Some(Attribution::single(FaultClass::SlowOst))),
            shoulder(Some(Attribution::single(FaultClass::SlowOst))),
        ];
        assert_eq!(run_verdict(&fs), Verdict::Single(FaultClass::SlowOst));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pio_trace::{Record, TraceMeta};
    use proptest::prelude::*;

    fn meta(ranks: u32) -> TraceMeta {
        TraceMeta {
            experiment: "prop".into(),
            platform: "test".into(),
            ranks,
            seed: 0,
        }
    }

    fn rec(rank: u32, offset: u64, t0: f64, dur: f64) -> Record {
        Record {
            rank,
            call: CallKind::Read,
            fd: 3,
            offset,
            bytes: 1 << 20,
            start_ns: (t0 * 1e9) as u64,
            end_ns: ((t0 + dur) * 1e9) as u64,
            phase: 0,
        }
    }

    /// Fisher–Yates with a splitmix-style LCG, so shuffles are a pure
    /// function of the proptest-chosen seed.
    fn shuffle(records: &mut [Record], seed: u64) {
        let mut x = seed | 1;
        for i in (1..records.len()).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            records.swap(i, ((x >> 33) as usize) % (i + 1));
        }
    }

    proptest! {
        /// A tail spread uniformly over the ranks is *not* a straggler,
        /// whatever its height: every rank owns the same slow-op share,
        /// so the concentration test must never fire.
        #[test]
        fn uniform_tail_never_fires_rank_correlation(
            ranks in 8u32..32,
            per_rank in 16usize..40,
            period in 3usize..7,
            slow in 0.3f64..5.0,
        ) {
            let mut t = Trace::new(meta(ranks));
            for rank in 0..ranks {
                for i in 0..per_rank {
                    let dur = if i % period == 0 { slow } else { 0.02 }
                        + ((rank as usize + i) % 5) as f64 * 1e-3;
                    let stripe = rank as u64 * per_rank as u64 + i as u64;
                    t.push(rec(rank, stripe << 20, i as f64, dur));
                }
            }
            prop_assert!(
                detect_rank_correlated_tail(&t, CallKind::Read, &Thresholds::default()).is_none()
            );
        }

        /// A planted straggler rank must always fire — and be named.
        #[test]
        fn planted_straggler_always_fires_and_is_named(
            ranks in 8u32..32,
            per_rank in 16usize..40,
            culprit_pick in 0u32..1000,
            slowdown in 8.0f64..64.0,
        ) {
            let culprit = culprit_pick % ranks;
            let mut t = Trace::new(meta(ranks));
            for rank in 0..ranks {
                for i in 0..per_rank {
                    let base = 0.02 + ((rank as usize + i) % 5) as f64 * 1e-3;
                    let dur = if rank == culprit { base * slowdown } else { base };
                    let stripe = rank as u64 * per_rank as u64 + i as u64;
                    t.push(rec(rank, stripe << 20, i as f64, dur));
                }
            }
            let f = detect_rank_correlated_tail(&t, CallKind::Read, &Thresholds::default());
            match f {
                Some(Finding::RankCorrelatedTail { ranks: ref culprits, .. }) =>
                    prop_assert_eq!(culprits, &vec![culprit]),
                other => prop_assert!(false, "expected RankCorrelatedTail, got {:?}", other),
            }
        }

        /// Both new detectors are record-order invariant: any shuffle of
        /// the stream yields the same verdict and the same culprits.
        #[test]
        fn detectors_shuffle_invariant(seed in 0u64..u64::MAX, ranks in 10u32..24) {
            let mut t = Trace::new(meta(ranks));
            for rank in 0..ranks {
                let dur = if rank == 7 { 0.9 } else { 0.02 };
                for i in 0..24u64 {
                    t.push(rec(rank, i << 20, i as f64, dur));
                }
            }
            for i in 0..100u64 {
                let mut r = rec(0, i << 11, i as f64 * 0.1, 0.1);
                r.call = CallKind::Write;
                r.bytes = 2048;
                t.push(r);
            }
            let mut s = t.clone();
            shuffle(&mut s.records, seed);
            let th = Thresholds::default();

            let a = detect_rank_correlated_tail(&t, CallKind::Read, &th);
            let b = detect_rank_correlated_tail(&s, CallKind::Read, &th);
            match (&a, &b) {
                (
                    Some(Finding::RankCorrelatedTail { ranks: ra, .. }),
                    Some(Finding::RankCorrelatedTail { ranks: rb, .. }),
                ) => {
                    prop_assert_eq!(ra, rb);
                    prop_assert_eq!(ra, &vec![7u32]);
                }
                other => prop_assert!(false, "both must fire identically: {:?}", other),
            }

            let ma = detect_metadata_shoulder(&t, &th);
            let mb = detect_metadata_shoulder(&s, &th);
            match (&ma, &mb) {
                (
                    Some(Finding::MetadataShoulder { small_ops: oa, rank: ka, .. }),
                    Some(Finding::MetadataShoulder { small_ops: ob, rank: kb, .. }),
                ) => {
                    prop_assert_eq!(oa, ob);
                    prop_assert_eq!(ka, kb);
                }
                other => prop_assert!(false, "both must fire identically: {:?}", other),
            }
        }
    }
}
