//! Bottleneck detectors — the paper's methodology distilled into code.
//!
//! Each of the paper's three case studies reads a different signature out
//! of the ensemble:
//!
//! * **Harmonic modes** (IOR, Fig. 1c): peaks at T, T/2, T/4 ⇒ one or two
//!   tasks per node monopolize node I/O resources.
//! * **Right shoulder** (MADbench, Fig. 4c): a read histogram whose slow
//!   tail stretches far beyond the main mode ⇒ pathological middleware
//!   behaviour (the strided read-ahead bug).
//! * **Progressive deterioration** (MADbench, Fig. 5a): per-phase CDFs
//!   getting worse phase over phase ⇒ cumulative resource exhaustion
//!   (read-ahead window growth under memory pressure).
//! * **Serialized rank** (GCRM, Fig. 6g): one rank owning the bulk of
//!   metadata time ⇒ serialized middleware metadata, fixed by
//!   aggregation.

use crate::empirical::EmpiricalDist;
use crate::modes::{find_modes, harmonic_structure, Mode};
use crate::rates::{durations, per_rank_io_time};
use pio_trace::{CallKind, Trace};

/// Detector thresholds (defaults chosen to match the paper's examples).
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Minimum samples before any distributional claim.
    pub min_samples: usize,
    /// KDE mode floor as a fraction of the tallest peak.
    pub mode_height_frac: f64,
    /// Relative tolerance when matching harmonic locations.
    pub harmonic_tol: f64,
    /// Right shoulder: p99/median ratio that counts as pathological.
    pub shoulder_tail_ratio: f64,
    /// Right shoulder: minimum mass beyond 2× median.
    pub shoulder_mass: f64,
    /// Progressive deterioration: median growth factor first→last phase.
    pub deterioration_factor: f64,
    /// Serialized rank: share of total I/O time concentrated in one rank.
    pub serialized_share: f64,
    /// Serialized rank: minimum operation count before the concentration
    /// counts as the "many small serialized operations" pathology (a
    /// handful of large aggregated writes is the *fix*, not the bug).
    pub serialized_min_ops: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            min_samples: 32,
            mode_height_frac: 0.10,
            harmonic_tol: 0.18,
            shoulder_tail_ratio: 4.0,
            shoulder_mass: 0.02,
            deterioration_factor: 1.5,
            serialized_share: 0.25,
            serialized_min_ops: 64,
        }
    }
}

/// One diagnostic finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Modes at T, T/2, … ⇒ intra-node I/O serialization.
    HarmonicModes {
        /// Which call class exhibits it.
        kind: CallKind,
        /// The fundamental (slowest) mode location, seconds.
        fundamental: f64,
        /// Harmonic orders present (1 = T, 2 = T/2, 4 = T/4, …).
        orders: Vec<u32>,
    },
    /// A slow tail far beyond the main mode ⇒ middleware pathology.
    RightShoulder {
        /// Which call class exhibits it.
        kind: CallKind,
        /// Median duration, seconds.
        median: f64,
        /// 99th percentile duration, seconds.
        p99: f64,
        /// Fraction of events slower than 2× the median.
        tail_mass: f64,
    },
    /// Per-phase medians growing ⇒ cumulative resource exhaustion.
    ProgressiveDeterioration {
        /// Which call class exhibits it.
        kind: CallKind,
        /// `(phase, median seconds)` for the affected phases.
        phase_medians: Vec<(u32, f64)>,
        /// Last/first median ratio.
        factor: f64,
    },
    /// One rank owns a dominant share of (metadata) I/O time.
    SerializedRank {
        /// The dominating rank.
        rank: u32,
        /// Its share of total I/O time in the examined class.
        share: f64,
        /// Whether the concentration is in metadata operations.
        metadata: bool,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::HarmonicModes {
                kind,
                fundamental,
                orders,
            } => write!(
                f,
                "{}: harmonic modes at T={fundamental:.2}s with orders {orders:?} — \
                 intra-node I/O serialization (one or two tasks per node \
                 monopolize node I/O)",
                kind.name()
            ),
            Finding::RightShoulder {
                kind,
                median,
                p99,
                tail_mass,
            } => write!(
                f,
                "{}: right shoulder — median {median:.2}s but p99 {p99:.2}s \
                 ({:.1}% of events beyond 2x median); suspect middleware \
                 read-ahead/caching pathology",
                kind.name(),
                tail_mass * 100.0
            ),
            Finding::ProgressiveDeterioration {
                kind,
                phase_medians,
                factor,
            } => write!(
                f,
                "{}: progressive per-phase deterioration ({} phases, median \
                 grows {factor:.1}x from first to last) — cumulative resource \
                 exhaustion; phases: {phase_medians:?}",
                kind.name(),
                phase_medians.len()
            ),
            Finding::SerializedRank {
                rank,
                share,
                metadata,
            } => write!(
                f,
                "rank {rank} owns {:.0}% of {} time — serialized {}; \
                 aggregate into fewer, larger operations",
                share * 100.0,
                if *metadata { "metadata" } else { "I/O" },
                if *metadata { "metadata writes" } else { "I/O" }
            ),
        }
    }
}

/// Harmonic verdict from already-extracted modes. Shared by the batch
/// detector (KDE modes) and the streaming path in `pio-ingest` (modes from
/// a windowed log-histogram grid).
pub fn harmonic_verdict(kind: CallKind, modes: &[Mode], th: &Thresholds) -> Option<Finding> {
    let h = harmonic_structure(modes, th.harmonic_tol)?;
    Some(Finding::HarmonicModes {
        kind,
        fundamental: h.fundamental,
        orders: h.orders,
    })
}

/// Harmonic-mode detector over one call class.
pub fn detect_harmonics(trace: &Trace, kind: CallKind, th: &Thresholds) -> Option<Finding> {
    let samples = durations(trace, kind, None);
    if samples.len() < th.min_samples {
        return None;
    }
    let dist = EmpiricalDist::new(&samples);
    if dist.variance() <= 0.0 {
        return None;
    }
    let modes = find_modes(&dist, 512, th.mode_height_frac);
    harmonic_verdict(kind, &modes, th)
}

/// Right-shoulder verdict from summary statistics (`n` samples with the
/// given median, p99, and mass beyond 2× median). Shared by the batch
/// detector (exact order statistics) and the streaming path (sketch
/// estimates).
pub fn shoulder_verdict(
    kind: CallKind,
    n: usize,
    median: f64,
    p99: f64,
    tail_mass: f64,
    th: &Thresholds,
) -> Option<Finding> {
    if n < th.min_samples || median <= 0.0 {
        return None;
    }
    if p99 / median >= th.shoulder_tail_ratio && tail_mass >= th.shoulder_mass {
        Some(Finding::RightShoulder {
            kind,
            median,
            p99,
            tail_mass,
        })
    } else {
        None
    }
}

/// Right-shoulder (pathological slow tail) detector.
pub fn detect_right_shoulder(trace: &Trace, kind: CallKind, th: &Thresholds) -> Option<Finding> {
    let samples = durations(trace, kind, None);
    if samples.len() < th.min_samples {
        return None;
    }
    let dist = EmpiricalDist::new(&samples);
    let median = dist.median();
    let p99 = dist.quantile(0.99);
    let tail_mass = dist.fraction_above(2.0 * median);
    shoulder_verdict(kind, samples.len(), median, p99, tail_mass, th)
}

/// Deterioration verdict over ordered `(group, median)` pairs: fires when
/// the longest run of consecutive increases ending at the last entry spans
/// at least 3 groups and grows by `deterioration_factor`. Shared by the
/// batch detectors and the streaming per-phase path.
pub fn deterioration_verdict(
    kind: CallKind,
    medians: &[(u32, f64)],
    th: &Thresholds,
) -> Option<Finding> {
    if medians.len() < 3 {
        return None;
    }
    let mut start = medians.len() - 1;
    while start > 0 && medians[start - 1].1 < medians[start].1 {
        start -= 1;
    }
    let run = &medians[start..];
    if run.len() < 3 {
        return None;
    }
    let factor = run.last().unwrap().1 / run[0].1.max(1e-300);
    if factor >= th.deterioration_factor {
        Some(Finding::ProgressiveDeterioration {
            kind,
            phase_medians: run.to_vec(),
            factor,
        })
    } else {
        None
    }
}

/// Progressive per-phase deterioration detector.
pub fn detect_progressive_deterioration(
    trace: &Trace,
    kind: CallKind,
    th: &Thresholds,
) -> Option<Finding> {
    let n_phases = trace.phase_count();
    let mut phase_medians = Vec::new();
    for p in 0..n_phases {
        let samples: Vec<f64> = trace
            .in_phase(p)
            .filter(|r| r.call == kind)
            .map(|r| r.secs())
            .collect();
        if samples.len() >= th.min_samples.min(8) {
            phase_medians.push((p, EmpiricalDist::new(&samples).median()));
        }
    }
    deterioration_verdict(kind, &phase_medians, th)
}

/// Progressive deterioration over explicitly ordered sample groups
/// (e.g. "all ranks' m-th middle-phase read" — free-running sections
/// have no per-iteration barrier phases to group by).
pub fn detect_deterioration_in_groups(
    kind: CallKind,
    groups: &[Vec<f64>],
    th: &Thresholds,
) -> Option<Finding> {
    let medians: Vec<(u32, f64)> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.len() >= th.min_samples.min(8))
        .map(|(i, g)| (i as u32, EmpiricalDist::new(g).median()))
        .collect();
    deterioration_verdict(kind, &medians, th)
}

/// Serialized-metadata verdict from per-rank aggregates: `per_rank` holds
/// `(rank, metadata seconds, metadata ops)` for the candidate heavy ranks
/// (need not be exhaustive — only the maximum matters), `meta_total` the
/// total metadata seconds, and `all_io_time` the total I/O seconds.
/// Shared by the batch detector and the streaming heavy-hitter path.
pub fn serialized_meta_verdict(
    per_rank: &[(u32, f64, usize)],
    meta_total: f64,
    ranks: u32,
    all_io_time: f64,
    th: &Thresholds,
) -> Option<Finding> {
    if meta_total <= 0.0 {
        return None;
    }
    let &(rank, t, ops) = per_rank.iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
    let share = t / meta_total;
    // Require genuine concentration: far above 1/ranks, made of *many*
    // operations (the serialization pathology — a handful of large
    // aggregated writes is the fix, not the bug), and material against
    // total I/O time.
    let fair = 1.0 / ranks.max(1) as f64;
    if share >= th.serialized_share
        && share > 10.0 * fair
        && ops >= th.serialized_min_ops
        && t / all_io_time.max(1e-300) >= 0.05
    {
        Some(Finding::SerializedRank {
            rank,
            share,
            metadata: true,
        })
    } else {
        None
    }
}

/// Serialized-rank detector (metadata first, then all I/O).
pub fn detect_serialized_rank(trace: &Trace, th: &Thresholds) -> Option<Finding> {
    // Metadata concentration.
    let mut meta: std::collections::HashMap<u32, (f64, usize)> = std::collections::HashMap::new();
    let mut meta_total = 0.0;
    for r in trace
        .records
        .iter()
        .filter(|r| matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite))
    {
        let e = meta.entry(r.rank).or_insert((0.0, 0));
        e.0 += r.secs();
        e.1 += 1;
        meta_total += r.secs();
    }
    let per_rank: Vec<(u32, f64, usize)> = meta.iter().map(|(&r, &(t, ops))| (r, t, ops)).collect();
    let all_io: f64 = trace
        .records
        .iter()
        .filter(|r| r.call.is_io())
        .map(|r| r.secs())
        .sum();
    if let Some(f) = serialized_meta_verdict(&per_rank, meta_total, trace.meta.ranks, all_io, th) {
        return Some(f);
    }
    // General I/O concentration.
    let per_rank = per_rank_io_time(trace);
    let total: f64 = per_rank.iter().map(|&(_, t)| t).sum();
    if total <= 0.0 || per_rank.len() < 4 {
        return None;
    }
    let (rank, t) = per_rank
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))?;
    let share = t / total;
    let fair = 1.0 / per_rank.len() as f64;
    if share >= th.serialized_share && share > 10.0 * fair {
        Some(Finding::SerializedRank {
            rank,
            share,
            metadata: false,
        })
    } else {
        None
    }
}

/// Run every detector over the natural call classes.
pub fn diagnose(trace: &Trace) -> Vec<Finding> {
    diagnose_with(trace, &Thresholds::default())
}

/// Run every detector with explicit thresholds.
pub fn diagnose_with(trace: &Trace, th: &Thresholds) -> Vec<Finding> {
    let mut findings = Vec::new();
    for kind in [CallKind::Write, CallKind::Read] {
        if let Some(f) = detect_harmonics(trace, kind, th) {
            findings.push(f);
        }
        if let Some(f) = detect_right_shoulder(trace, kind, th) {
            findings.push(f);
        }
        if let Some(f) = detect_progressive_deterioration(trace, kind, th) {
            findings.push(f);
        }
    }
    if let Some(f) = detect_serialized_rank(trace, th) {
        findings.push(f);
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::{Record, TraceMeta};

    fn rec(rank: u32, call: CallKind, bytes: u64, t0: f64, dur: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: (t0 * 1e9) as u64,
            end_ns: ((t0 + dur) * 1e9) as u64,
            phase,
        }
    }

    fn meta(ranks: u32) -> TraceMeta {
        TraceMeta {
            experiment: "diag".into(),
            platform: "test".into(),
            ranks,
            seed: 0,
        }
    }

    #[test]
    fn harmonic_trace_detected() {
        let mut t = Trace::new(meta(128));
        // Durations clustered at 8, 16, 32 (with slight spread).
        for i in 0..128u32 {
            let dur = match i % 8 {
                0 => 8.0,
                1..=2 => 16.0,
                _ => 32.0,
            } + (i % 5) as f64 * 0.05;
            t.push(rec(i, CallKind::Write, 1 << 20, 0.0, dur, 0));
        }
        let f = detect_harmonics(&t, CallKind::Write, &Thresholds::default()).expect("harmonics");
        match f {
            Finding::HarmonicModes {
                fundamental,
                ref orders,
                ..
            } => {
                assert!((fundamental - 32.0).abs() < 2.0);
                assert!(orders.contains(&2) || orders.contains(&4));
            }
            _ => panic!("wrong finding"),
        }
        // Display renders.
        assert!(f.to_string().contains("harmonic"));
    }

    #[test]
    fn unimodal_trace_not_harmonic() {
        let mut t = Trace::new(meta(64));
        for i in 0..64u32 {
            t.push(rec(
                i,
                CallKind::Write,
                1 << 20,
                0.0,
                10.0 + (i % 7) as f64 * 0.02,
                0,
            ));
        }
        assert!(detect_harmonics(&t, CallKind::Write, &Thresholds::default()).is_none());
    }

    #[test]
    fn right_shoulder_detected_on_buggy_reads() {
        let mut t = Trace::new(meta(64));
        for i in 0..60u32 {
            t.push(rec(
                i,
                CallKind::Read,
                1 << 20,
                0.0,
                15.0 + (i % 5) as f64 * 0.1,
                0,
            ));
        }
        // A handful of catastrophic reads (30–500 s).
        for (i, dur) in [(60u32, 90.0), (61, 200.0), (62, 450.0), (63, 35.0)] {
            t.push(rec(i, CallKind::Read, 1 << 20, 0.0, dur, 0));
        }
        let f =
            detect_right_shoulder(&t, CallKind::Read, &Thresholds::default()).expect("shoulder");
        match f {
            Finding::RightShoulder {
                median,
                p99,
                tail_mass,
                ..
            } => {
                assert!((median - 15.2).abs() < 1.0);
                assert!(p99 > 100.0);
                assert!(tail_mass > 0.03);
            }
            _ => panic!("wrong finding"),
        }
    }

    #[test]
    fn healthy_reads_have_no_shoulder() {
        let mut t = Trace::new(meta(64));
        for i in 0..64u32 {
            t.push(rec(
                i,
                CallKind::Read,
                1 << 20,
                0.0,
                15.0 + (i % 5) as f64 * 0.2,
                0,
            ));
        }
        assert!(detect_right_shoulder(&t, CallKind::Read, &Thresholds::default()).is_none());
    }

    #[test]
    fn progressive_deterioration_detected() {
        let mut t = Trace::new(meta(32));
        // Phases 0..5 with read medians 10, 10, 12, 20, 35, 60.
        let medians = [10.0, 10.0, 12.0, 20.0, 35.0, 60.0];
        for (p, &m) in medians.iter().enumerate() {
            for i in 0..32u32 {
                t.push(rec(
                    i,
                    CallKind::Read,
                    1 << 20,
                    p as f64 * 100.0,
                    m + (i % 3) as f64 * 0.1,
                    p as u32,
                ));
            }
        }
        let f = detect_progressive_deterioration(&t, CallKind::Read, &Thresholds::default())
            .expect("deterioration");
        match f {
            Finding::ProgressiveDeterioration {
                factor,
                ref phase_medians,
                ..
            } => {
                assert!(factor > 2.0, "{factor}");
                assert!(phase_medians.len() >= 4);
                assert_eq!(phase_medians.last().unwrap().0, 5);
            }
            _ => panic!("wrong finding"),
        }
    }

    #[test]
    fn grouped_deterioration_detector() {
        let growing: Vec<Vec<f64>> = [5.0, 6.0, 9.0, 16.0, 30.0]
            .iter()
            .map(|&m| (0..16).map(|i| m + (i % 3) as f64 * 0.05).collect())
            .collect();
        let f = detect_deterioration_in_groups(CallKind::Read, &growing, &Thresholds::default())
            .expect("must fire");
        match f {
            Finding::ProgressiveDeterioration { factor, .. } => assert!(factor > 3.0),
            _ => panic!("wrong finding"),
        }
        let flat: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..16).map(|i| 5.0 + (i % 3) as f64 * 0.05).collect())
            .collect();
        assert!(
            detect_deterioration_in_groups(CallKind::Read, &flat, &Thresholds::default()).is_none()
        );
    }

    #[test]
    fn flat_phases_not_deteriorating() {
        let mut t = Trace::new(meta(32));
        for p in 0..6u32 {
            for i in 0..32u32 {
                t.push(rec(
                    i,
                    CallKind::Read,
                    1 << 20,
                    p as f64 * 100.0,
                    10.0 + (i % 3) as f64 * 0.1,
                    p,
                ));
            }
        }
        assert!(
            detect_progressive_deterioration(&t, CallKind::Read, &Thresholds::default()).is_none()
        );
    }

    #[test]
    fn serialized_metadata_rank_detected() {
        let mut t = Trace::new(meta(256));
        // Rank 0 does 500 slow metadata writes; everyone does some data I/O.
        for i in 0..500 {
            t.push(rec(0, CallKind::MetaWrite, 2048, i as f64, 0.3, 0));
        }
        for i in 0..256u32 {
            t.push(rec(i, CallKind::Write, 1 << 20, 0.0, 1.0, 0));
        }
        let f = detect_serialized_rank(&t, &Thresholds::default()).expect("serialized");
        match f {
            Finding::SerializedRank {
                rank,
                share,
                metadata,
            } => {
                assert_eq!(rank, 0);
                assert!(share > 0.9);
                assert!(metadata);
            }
            _ => panic!("wrong finding"),
        }
    }

    #[test]
    fn balanced_trace_has_no_serialized_rank() {
        let mut t = Trace::new(meta(64));
        for i in 0..64u32 {
            t.push(rec(i, CallKind::Write, 1 << 20, 0.0, 1.0, 0));
            t.push(rec(i, CallKind::MetaWrite, 2048, 1.0, 0.01, 0));
        }
        assert!(detect_serialized_rank(&t, &Thresholds::default()).is_none());
    }

    #[test]
    fn diagnose_collects_multiple_findings() {
        let mut t = Trace::new(meta(256));
        // Harmonic writes + serialized metadata.
        for i in 0..128u32 {
            let dur = if i % 4 == 0 { 16.0 } else { 32.0 };
            t.push(rec(
                i,
                CallKind::Write,
                1 << 20,
                0.0,
                dur + (i % 5) as f64 * 0.03,
                0,
            ));
        }
        for i in 0..700 {
            t.push(rec(0, CallKind::MetaWrite, 2048, i as f64, 0.5, 0));
        }
        let findings = diagnose(&t);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::HarmonicModes { .. })),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::SerializedRank { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn empty_trace_diagnoses_nothing() {
        let t = Trace::new(meta(0));
        assert!(diagnose(&t).is_empty());
    }
}
