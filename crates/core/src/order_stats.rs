//! Order statistics — the paper's Equation (1).
//!
//! For N tasks drawing I/O times iid from density `f` with CDF `F`, the
//! phase completes at the N-th order statistic, distributed as
//! `f_N(t) = N·F(t)^(N-1)·f(t)`. "As N increases the expression F(t)^(N−1)
//! quickly converges to a step function picking out a point in the
//! right-hand tail" — which is why the tail, not the mean, governs
//! barriered applications.

use crate::empirical::EmpiricalDist;

/// CDF of the maximum of `n` iid draws: `F(t)^n`.
pub fn max_cdf(dist: &EmpiricalDist, t: f64, n: u32) -> f64 {
    dist.cdf(t).powi(n as i32)
}

/// Survival function of the maximum: probability the slowest of `n`
/// exceeds `t`.
pub fn max_survival(dist: &EmpiricalDist, t: f64, n: u32) -> f64 {
    1.0 - max_cdf(dist, t, n)
}

/// Expected maximum of `n` iid draws from the empirical distribution —
/// exact under the empirical measure:
/// `E[max] = Σᵢ t₍ᵢ₎ · [ (i/m)ⁿ − ((i−1)/m)ⁿ ]` over sorted samples.
///
/// ```
/// use pio_core::empirical::EmpiricalDist;
/// use pio_core::order_stats::expected_max;
/// let d = EmpiricalDist::new(&(1..=100).map(f64::from).collect::<Vec<_>>());
/// // One draw: the mean. 1024 draws: essentially the sample max.
/// assert!((expected_max(&d, 1) - d.mean()).abs() < 1e-9);
/// assert!(expected_max(&d, 1024) > 99.0);
/// ```
pub fn expected_max(dist: &EmpiricalDist, n: u32) -> f64 {
    let m = dist.n() as f64;
    let samples = dist.samples();
    let mut acc = 0.0;
    let mut prev = 0.0f64;
    for (i, &t) in samples.iter().enumerate() {
        let cur = ((i + 1) as f64 / m).powi(n as i32);
        acc += t * (cur - prev);
        prev = cur;
    }
    acc
}

/// Quantile of the maximum of `n` draws: the `t` with `F(t)^n = q`,
/// i.e. the base distribution's `q^(1/n)` quantile.
pub fn max_quantile(dist: &EmpiricalDist, q: f64, n: u32) -> f64 {
    let q = q.clamp(0.0, 1.0);
    dist.quantile(q.powf(1.0 / n as f64))
}

/// Density of the maximum on a grid: `(t, N·F̂(t)^(N−1)·f̂(t))` with `f̂`
/// a KDE of the base distribution and `F̂` its own cumulative integral
/// (using the ECDF for `F` against a smoothed `f` breaks normalization in
/// the extreme tail, exactly where `f_N` lives). Useful for plotting `f_N`.
pub fn max_density_grid(dist: &EmpiricalDist, n: u32, points: usize) -> Vec<(f64, f64)> {
    let kde = crate::kde::Kde::new(dist);
    let grid = kde.grid(points);
    let dt = if grid.len() >= 2 {
        grid[1].0 - grid[0].0
    } else {
        0.0
    };
    let mut cum = 0.0;
    grid.into_iter()
        .map(|(t, f)| {
            cum = (cum + f * dt).min(1.0);
            (t, n as f64 * cum.powi(n as i32 - 1) * f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniformish(n: usize) -> EmpiricalDist {
        // Near-uniform on [0,1].
        EmpiricalDist::new(&(1..=n).map(|i| i as f64 / n as f64).collect::<Vec<_>>())
    }

    #[test]
    fn max_cdf_is_powered() {
        let d = uniformish(1000);
        let t = 0.5;
        let f1 = d.cdf(t);
        assert!((max_cdf(&d, t, 4) - f1.powi(4)).abs() < 1e-12);
        assert!(max_cdf(&d, t, 64) < 1e-12 + f1.powi(64) + 1e-12);
        assert!((max_survival(&d, t, 2) - (1.0 - f1 * f1)).abs() < 1e-12);
    }

    #[test]
    fn expected_max_of_one_is_the_mean() {
        let d = EmpiricalDist::new(&[1.0, 2.0, 3.0, 4.0]);
        assert!((expected_max(&d, 1) - d.mean()).abs() < 1e-12);
    }

    #[test]
    fn expected_max_grows_with_n_toward_the_max() {
        let d = uniformish(500);
        let e1 = expected_max(&d, 1);
        let e4 = expected_max(&d, 4);
        let e64 = expected_max(&d, 64);
        let e1024 = expected_max(&d, 1024);
        assert!(e1 < e4 && e4 < e64 && e64 < e1024);
        assert!(e1024 <= d.max() + 1e-12);
        // Uniform: E[max of n] = n/(n+1) → 64 draws ≈ 0.985.
        assert!((e64 - 64.0 / 65.0).abs() < 0.02, "{e64}");
    }

    #[test]
    fn expected_max_converges_to_sample_max() {
        let d = EmpiricalDist::new(&[1.0, 5.0, 9.0]);
        let big = expected_max(&d, 10_000);
        assert!((big - 9.0).abs() < 0.02, "{big}");
    }

    #[test]
    fn max_quantile_is_right_shifted() {
        let d = uniformish(1000);
        let q50_1 = max_quantile(&d, 0.5, 1);
        let q50_16 = max_quantile(&d, 0.5, 16);
        let q50_1024 = max_quantile(&d, 0.5, 1024);
        assert!(q50_1 < q50_16 && q50_16 < q50_1024);
        // Uniform: median of max of n is (1/2)^(1/n) → ~0.9576 at n=16.
        assert!((q50_16 - 0.5f64.powf(1.0 / 16.0)).abs() < 0.02);
    }

    #[test]
    fn max_density_concentrates_in_tail() {
        let d = uniformish(2000);
        let grid = max_density_grid(&d, 256, 400);
        // The mass center of f_N should be far right of the base mean.
        let dt = grid[1].0 - grid[0].0;
        let mass: f64 = grid.iter().map(|&(_, f)| f * dt).sum();
        let mean: f64 = grid.iter().map(|&(t, f)| t * f * dt).sum::<f64>() / mass;
        assert!(mass > 0.8 && mass < 1.2, "mass {mass}");
        assert!(mean > 0.95, "mean of max density {mean}");
    }

    #[test]
    fn monte_carlo_agrees_with_formula() {
        // Draw maxima of n=8 from the empirical dist by resampling and
        // compare to expected_max.
        let d = uniformish(400);
        let mut rng = rand_sim();
        let trials = 4000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut m = f64::NEG_INFINITY;
            for _ in 0..8 {
                let idx = (rng.next() % 400) as usize;
                m = m.max(d.samples()[idx]);
            }
            acc += m;
        }
        let mc = acc / trials as f64;
        let formula = expected_max(&d, 8);
        assert!((mc - formula).abs() < 0.01, "mc {mc} vs formula {formula}");
    }

    /// Tiny xorshift for the Monte-Carlo check (keeps rand out of this
    /// crate's non-dev deps).
    struct X(u64);
    fn rand_sim() -> X {
        X(0x9E3779B97F4A7C15)
    }
    impl X {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// E[max of n] is nondecreasing in n and bounded by the sample max.
        #[test]
        fn expected_max_monotone(samples in proptest::collection::vec(0.0f64..100.0, 2..100)) {
            let d = EmpiricalDist::new(&samples);
            let mut last = f64::NEG_INFINITY;
            for n in [1u32, 2, 4, 16, 256] {
                let e = expected_max(&d, n);
                prop_assert!(e >= last - 1e-9);
                prop_assert!(e <= d.max() + 1e-9);
                prop_assert!(e >= d.min() - 1e-9);
                last = e;
            }
        }

        /// max_cdf is a valid CDF in t for fixed n.
        #[test]
        fn max_cdf_valid(samples in proptest::collection::vec(0.0f64..100.0, 2..100), n in 1u32..64) {
            let d = EmpiricalDist::new(&samples);
            let mut last = 0.0;
            for i in 0..=20 {
                let t = d.min() + (d.max() - d.min()) * i as f64 / 20.0;
                let c = max_cdf(&d, t, n);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c >= last - 1e-12);
                last = c;
            }
            prop_assert!((max_cdf(&d, d.max(), n) - 1.0).abs() < 1e-12);
        }
    }
}
