//! Gaussian kernel density estimation — the smooth density view used for
//! mode detection.

use crate::empirical::EmpiricalDist;

/// A Gaussian KDE over a sample set.
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Silverman's rule-of-thumb bandwidth
    /// `0.9·min(σ, IQR/1.34)·n^(−1/5)` (floored to a tiny positive value
    /// for degenerate data).
    pub fn silverman_bandwidth(dist: &EmpiricalDist) -> f64 {
        let sigma = dist.std_dev();
        let iqr = dist.iqr();
        let n = dist.n() as f64;
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        (0.9 * spread * n.powf(-0.2)).max(1e-9 * (1.0 + dist.max().abs()))
    }

    /// KDE with the Silverman bandwidth.
    pub fn new(dist: &EmpiricalDist) -> Self {
        Kde {
            samples: dist.samples().to_vec(),
            bandwidth: Self::silverman_bandwidth(dist),
        }
    }

    /// KDE with an explicit bandwidth.
    pub fn with_bandwidth(dist: &EmpiricalDist, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0);
        Kde {
            samples: dist.samples().to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `t`.
    pub fn density(&self, t: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&x| {
                let z = (t - x) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Density evaluated on a uniform grid of `points` spanning the data
    /// (padded by 3 bandwidths on both sides). Returns `(t, f̂(t))` pairs.
    pub fn grid(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let lo = self.samples.first().copied().unwrap_or(0.0) - 3.0 * self.bandwidth;
        let hi = self.samples.last().copied().unwrap_or(1.0) + 3.0 * self.bandwidth;
        (0..points)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (t, self.density(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_at_the_data() {
        let d = EmpiricalDist::new(&[1.0, 1.1, 0.9, 1.05, 0.95, 5.0, 5.1, 4.9]);
        let kde = Kde::with_bandwidth(&d, 0.3);
        // Density near the clusters beats density in the gap.
        assert!(kde.density(1.0) > kde.density(3.0) * 3.0);
        assert!(kde.density(5.0) > kde.density(3.0) * 3.0);
    }

    #[test]
    fn grid_integrates_to_one() {
        let samples: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.618).fract() * 10.0)
            .collect();
        let d = EmpiricalDist::new(&samples);
        let kde = Kde::new(&d);
        let grid = kde.grid(512);
        let dt = grid[1].0 - grid[0].0;
        let mass: f64 = grid.iter().map(|&(_, f)| f * dt).sum();
        assert!((mass - 1.0).abs() < 0.02, "{mass}");
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let d = EmpiricalDist::new(&[0.0, 10.0]);
        let wide = Kde::with_bandwidth(&d, 10.0);
        let narrow = Kde::with_bandwidth(&d, 0.1);
        // Narrow KDE sees two separated bumps → low density midway.
        assert!(narrow.density(5.0) < wide.density(5.0));
        assert_eq!(wide.bandwidth(), 10.0);
    }

    #[test]
    fn degenerate_data_does_not_blow_up() {
        let d = EmpiricalDist::new(&[2.0, 2.0, 2.0]);
        let kde = Kde::new(&d);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(2.0).is_finite());
    }
}
