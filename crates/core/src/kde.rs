//! Gaussian kernel density estimation — the smooth density view used for
//! mode detection.
//!
//! Grid evaluation has two paths behind one API:
//!
//! * **exact** — every sample contributes to every grid point,
//!   O(n·points). Always available as [`Kde::grid_exact`]; used
//!   automatically for small samples or very coarse grids.
//! * **linear-binned** — samples are first spread onto the grid with
//!   linear weights, then the binned masses are convolved with a
//!   precomputed kernel table truncated where the Gaussian underflows,
//!   O(n + points·K) with K = truncation radius in grid steps. This is
//!   the standard linear-binning approximation; with bins no wider than
//!   the bandwidth its error is far below statistical noise (bounded by
//!   the accuracy test against the exact path).

use crate::empirical::EmpiricalDist;

/// Samples below this use the exact path: the binned setup cost isn't
/// worth it, and exactness is free.
const BINNED_MIN_SAMPLES: usize = 512;

/// Kernel truncation radius in bandwidths: `exp(-0.5·8.5²) ≈ 2e-16`,
/// below f64 relative precision of the peak.
const KERNEL_CUTOFF_BW: f64 = 8.5;

/// A Gaussian KDE over a sample set (borrowed from its
/// [`EmpiricalDist`] — construction copies nothing).
#[derive(Debug, Clone)]
pub struct Kde<'a> {
    samples: &'a [f64],
    bandwidth: f64,
}

impl<'a> Kde<'a> {
    /// Silverman's rule-of-thumb bandwidth
    /// `0.9·min(σ, IQR/1.34)·n^(−1/5)` (floored to a tiny positive value
    /// for degenerate data).
    pub fn silverman_bandwidth(dist: &EmpiricalDist) -> f64 {
        let sigma = dist.std_dev();
        let iqr = dist.iqr();
        let n = dist.n() as f64;
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        (0.9 * spread * n.powf(-0.2)).max(1e-9 * (1.0 + dist.max().abs()))
    }

    /// KDE with the Silverman bandwidth.
    pub fn new(dist: &'a EmpiricalDist) -> Self {
        Kde {
            samples: dist.samples(),
            bandwidth: Self::silverman_bandwidth(dist),
        }
    }

    /// KDE with an explicit bandwidth.
    pub fn with_bandwidth(dist: &'a EmpiricalDist, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0);
        Kde {
            samples: dist.samples(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `t` (exact, O(n)).
    pub fn density(&self, t: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&x| {
                let z = (t - x) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// The grid span: data range padded by 3 bandwidths on both sides.
    fn span(&self) -> (f64, f64) {
        let lo = self.samples.first().copied().unwrap_or(0.0) - 3.0 * self.bandwidth;
        let hi = self.samples.last().copied().unwrap_or(1.0) + 3.0 * self.bandwidth;
        (lo, hi)
    }

    /// Density evaluated on a uniform grid of `points` spanning the data
    /// (padded by 3 bandwidths on both sides). Returns `(t, f̂(t))` pairs.
    ///
    /// Dispatches to the linear-binned evaluation when the sample is
    /// large and the grid resolves the bandwidth (`dt ≤ h`); otherwise
    /// falls back to [`Kde::grid_exact`].
    pub fn grid(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let (lo, hi) = self.span();
        let dt = (hi - lo) / (points - 1) as f64;
        if self.samples.len() >= BINNED_MIN_SAMPLES && dt <= self.bandwidth && dt > 0.0 {
            self.grid_binned(points, lo, hi)
        } else {
            self.grid_exact(points)
        }
    }

    /// Exact grid evaluation, O(n·points). Reference implementation for
    /// the binned path's accuracy bound; callers that need exactness at
    /// any size can use it directly.
    pub fn grid_exact(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let (lo, hi) = self.span();
        (0..points)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (t, self.density(t))
            })
            .collect()
    }

    /// Linear-binned grid evaluation, O(n + points·K).
    fn grid_binned(&self, points: usize, lo: f64, hi: f64) -> Vec<(f64, f64)> {
        let h = self.bandwidth;
        let n = self.samples.len();
        let dt = (hi - lo) / (points - 1) as f64;

        // 1) Spread each sample across its two bracketing grid points
        //    with linear weights (mass is conserved exactly).
        let mut mass = vec![0.0f64; points];
        for &x in self.samples {
            let pos = (x - lo) / dt;
            // Samples sit 3 bandwidths inside the span, but clamp anyway
            // against floating-point edge effects.
            let i = (pos.floor() as usize).min(points - 2);
            let frac = (pos - i as f64).clamp(0.0, 1.0);
            mass[i] += 1.0 - frac;
            mass[i + 1] += frac;
        }

        // 2) Gaussian kernel table on grid offsets, truncated where the
        //    tail underflows.
        let kmax = ((KERNEL_CUTOFF_BW * h / dt).ceil() as usize).min(points - 1);
        let kernel: Vec<f64> = (0..=kmax)
            .map(|j| {
                let z = j as f64 * dt / h;
                (-0.5 * z * z).exp()
            })
            .collect();

        // 3) Convolve masses with the kernel.
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * n as f64);
        (0..points)
            .map(|g| {
                let from = g.saturating_sub(kmax);
                let to = (g + kmax).min(points - 1);
                let mut acc = 0.0;
                for (b, &m) in mass[from..=to].iter().enumerate() {
                    acc += m * kernel[(from + b).abs_diff(g)];
                }
                let t = lo + (hi - lo) * g as f64 / (points - 1) as f64;
                (t, acc * norm)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_at_the_data() {
        let d = EmpiricalDist::new(&[1.0, 1.1, 0.9, 1.05, 0.95, 5.0, 5.1, 4.9]);
        let kde = Kde::with_bandwidth(&d, 0.3);
        // Density near the clusters beats density in the gap.
        assert!(kde.density(1.0) > kde.density(3.0) * 3.0);
        assert!(kde.density(5.0) > kde.density(3.0) * 3.0);
    }

    #[test]
    fn grid_integrates_to_one() {
        let samples: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.618).fract() * 10.0)
            .collect();
        let d = EmpiricalDist::new(&samples);
        let kde = Kde::new(&d);
        let grid = kde.grid(512);
        let dt = grid[1].0 - grid[0].0;
        let mass: f64 = grid.iter().map(|&(_, f)| f * dt).sum();
        assert!((mass - 1.0).abs() < 0.02, "{mass}");
    }

    #[test]
    fn binned_grid_integrates_to_one() {
        // Large sample → binned path; mass must still be conserved.
        let samples: Vec<f64> = (0..5000)
            .map(|i| (i as f64 * 0.618).fract() * 10.0)
            .collect();
        let d = EmpiricalDist::new(&samples);
        let kde = Kde::new(&d);
        let grid = kde.grid(512);
        let dt = grid[1].0 - grid[0].0;
        let mass: f64 = grid.iter().map(|&(_, f)| f * dt).sum();
        assert!((mass - 1.0).abs() < 0.02, "{mass}");
    }

    #[test]
    fn binned_grid_matches_exact_within_tolerance() {
        // Trimodal sample big enough to take the binned path; the
        // linear-binning approximation must track the exact KDE to a
        // small fraction of its peak everywhere on the grid.
        let samples: Vec<f64> = (0..3000)
            .map(|i| {
                let u = (i as f64 * 0.6180339887).fract();
                let mode = i % 3;
                10.0 + mode as f64 * 5.0 + (u - 0.5) * 2.0
            })
            .collect();
        let d = EmpiricalDist::new(&samples);
        let kde = Kde::new(&d);
        let binned = kde.grid(512);
        let exact = kde.grid_exact(512);
        assert_eq!(binned.len(), exact.len());
        let peak = exact.iter().map(|&(_, f)| f).fold(0.0, f64::max);
        assert!(peak > 0.0);
        for (&(tb, fb), &(te, fe)) in binned.iter().zip(&exact) {
            assert!((tb - te).abs() < 1e-9, "grid abscissae differ");
            assert!(
                (fb - fe).abs() <= 2e-3 * peak,
                "binned {fb} vs exact {fe} at t={tb} (peak {peak})"
            );
        }
    }

    #[test]
    fn small_samples_use_the_exact_path_bit_for_bit() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 4.0).collect();
        let d = EmpiricalDist::new(&samples);
        let kde = Kde::new(&d);
        assert_eq!(kde.grid(256), kde.grid_exact(256));
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let d = EmpiricalDist::new(&[0.0, 10.0]);
        let wide = Kde::with_bandwidth(&d, 10.0);
        let narrow = Kde::with_bandwidth(&d, 0.1);
        // Narrow KDE sees two separated bumps → low density midway.
        assert!(narrow.density(5.0) < wide.density(5.0));
        assert_eq!(wide.bandwidth(), 10.0);
    }

    #[test]
    fn degenerate_data_does_not_blow_up() {
        let d = EmpiricalDist::new(&[2.0, 2.0, 2.0]);
        let kde = Kde::new(&d);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(2.0).is_finite());
    }

    #[test]
    fn degenerate_large_sample_grid_is_finite() {
        // All-equal samples with the binned path's n: bandwidth is floored
        // tiny, dt > h forces the exact path; nothing may NaN.
        let d = EmpiricalDist::new(&vec![2.0; 1000]);
        let kde = Kde::new(&d);
        for (_, f) in kde.grid(64) {
            assert!(f.is_finite());
        }
    }
}
