//! Fault-class attribution: from "the ensemble has a slow tail" to
//! *which class of fault* put it there.
//!
//! The paper's thesis is that fault classes leave reproducible
//! fingerprints on the ensemble. This module holds the decomposition
//! machinery that turns a histogram anomaly into a verdict:
//!
//! * **Rank decomposition** — a tail whose mass concentrates on a small
//!   fraction of ranks (which are slow on *every* operation, not just
//!   the tail) is a straggler client node, not a storage problem.
//! * **Storage-target decomposition** — records are folded onto stripe
//!   residue classes `(offset / stripe) mod m` for small `m`; a tail
//!   that concentrates on one residue class *while the bulk does not*
//!   is a degraded storage target (slow OST).
//! * **Quantized tail levels** — retry-on-timeout faults put the tail
//!   at discrete levels (base + k·timeout): several narrow, separated
//!   islands in the duration histogram instead of one smear.
//! * **Periodic tail bursts** — a duty-cycled fabric fault clusters the
//!   tail events into regularly spaced bursts in wall-clock time.
//!
//! Everything operates on [`TailProfile`], a mergeable order-independent
//! accumulator shared by the batch detectors (`diagnosis`), the online
//! `StreamDiagnoser`, and the sharded snapshot path in `pio-ingest` —
//! one source of truth for what "rank-correlated" means, estimated from
//! the same statistic everywhere. The tail cut itself
//! ([`Thresholds::tail_cut`]) is applied at *diagnosis* time, never at
//! accumulation time, so profiles stay insensitive to record order and
//! to the provisional medians a streaming consumer sees.

use crate::diagnosis::Thresholds;
use pio_des::hist::{BinTable, LogBins, LogHistogram};
use pio_des::FxHashMap;
use pio_trace::{CallKind, Trace};
use std::sync::OnceLock;

/// Duration geometry shared by every tail profile: 1 µs to 1000 s.
pub const TAIL_HIST_LO: f64 = 1e-6;
/// Upper duration bound, seconds.
pub const TAIL_HIST_HI: f64 = 1e3;
/// Per-rank histogram resolution (each bin spans a ~1.54× factor —
/// coarse, but the tail/bulk split only needs one cut).
pub const TAIL_HIST_BINS: usize = 48;

/// Stripe-residue moduli the storage-target decomposition folds onto.
/// Any OST pool whose size shares a factor with one of these shows a
/// residue-class concentration when a single target degrades.
pub const MODULI: [usize; 7] = [2, 3, 4, 5, 6, 7, 8];

/// The call classes worth profiling for attribution.
pub const TAIL_KINDS: [CallKind; 4] = [
    CallKind::Read,
    CallKind::Write,
    CallKind::MetaRead,
    CallKind::MetaWrite,
];

/// The fault class a finding is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// One degraded storage target: tail concentrates on a stripe
    /// residue class that the bulk does not.
    SlowOst,
    /// Duty-cycled interconnect degradation: tail events arrive in
    /// periodic bursts, with ranks and targets both balanced.
    FlakyFabric,
    /// Metadata-server stalls: the shoulder sits on a metadata call
    /// class, spread evenly over ranks.
    MdsStall,
    /// A straggler client node: the tail is rank-correlated and the
    /// culprit ranks are slow on every operation.
    StragglerNode,
    /// Request loss with timeout retry: the tail is quantized at
    /// base + k·timeout levels.
    DropRetry,
    /// Serialized small-write metadata storm (the paper's GCRM case):
    /// a sub-3KB write class owned by one rank, executed serially.
    MetadataStorm,
}

impl FaultClass {
    /// Stable lowercase identifier (matrix tables, CI artifacts).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::SlowOst => "slow-ost",
            FaultClass::FlakyFabric => "flaky-fabric",
            FaultClass::MdsStall => "mds-stall",
            FaultClass::StragglerNode => "straggler-node",
            FaultClass::DropRetry => "drop-retry",
            FaultClass::MetadataStorm => "metadata-storm",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            FaultClass::SlowOst => "degraded storage target (slow OST)",
            FaultClass::FlakyFabric => "periodic fabric degradation",
            FaultClass::MdsStall => "metadata-server stall windows",
            FaultClass::StragglerNode => "straggler client node",
            FaultClass::DropRetry => "request loss with timeout retry",
            FaultClass::MetadataStorm => "serialized small-write metadata storm",
        };
        write!(f, "{text}")
    }
}

/// The process-wide [`BinTable`] for the shared tail-profile geometry
/// (`TAIL_HIST_LO..TAIL_HIST_HI` × `TAIL_HIST_BINS`) — every profile
/// uses the same constants, so batch ingest paths classify against one
/// table instead of calling `ln` per record.
pub fn tail_bin_table() -> &'static BinTable {
    static TABLE: OnceLock<BinTable> = OnceLock::new();
    TABLE.get_or_init(|| BinTable::new(LogBins::new(TAIL_HIST_LO, TAIL_HIST_HI, TAIL_HIST_BINS)))
}

/// Per-rank slice of a [`TailProfile`].
#[derive(Debug, Clone, PartialEq)]
struct RankCell {
    counts: Vec<u64>,
    secs: f64,
    ops: u64,
}

impl RankCell {
    fn empty() -> Self {
        RankCell {
            counts: vec![0; TAIL_HIST_BINS],
            secs: 0.0,
            ops: 0,
        }
    }
}

/// Ranks below this index live in the direct-indexed table; higher ones
/// spill to a hash map. HPC rank ids are dense from zero, so in practice
/// the per-record cell access is one bounds-checked array read.
const DENSE_RANKS: usize = 4096;

/// Mergeable per-rank + per-stripe-residue duration decomposition of one
/// call class. Order-independent: merging profiles built from disjoint
/// record streams equals one profile fed the union (counts exactly, f64
/// accumulators up to rounding), the same law as every other sketch in
/// the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TailProfile {
    geom: LogBins,
    stripe_bytes: u64,
    /// `log2(stripe_bytes)` when it is a power of two, so the hot path
    /// shifts instead of dividing.
    stripe_shift: Option<u32>,
    /// Cells for ranks `< DENSE_RANKS`, direct-indexed by rank and grown
    /// on demand; the hot path touches one bounds-checked slot instead
    /// of hashing.
    dense: Vec<Option<RankCell>>,
    /// Spill table for out-of-range rank ids.
    sparse: FxHashMap<u32, RankCell>,
    /// Flat residue histograms: the duration histogram of records whose
    /// stripe index ≡ r (mod `MODULI[mi]`) occupies
    /// `RES_OFF[mi] + r * TAIL_HIST_BINS ..+ TAIL_HIST_BINS`. One
    /// contiguous allocation (35 rows × 48 bins) instead of dozens of
    /// scattered vectors keeps the eight per-record increments of
    /// `add_binned` inside a 13 kB working set.
    residues: Vec<u64>,
}

/// Row offsets of each modulus's residue block in the flat storage.
const RES_OFF: [usize; MODULI.len()] = {
    let mut off = [0usize; MODULI.len()];
    let mut acc = 0;
    let mut i = 0;
    while i < MODULI.len() {
        off[i] = acc;
        acc += MODULI[i] * TAIL_HIST_BINS;
        i += 1;
    }
    off
};

/// Total flat residue slots across all moduli.
const RES_TOTAL: usize = RES_OFF[MODULI.len() - 1] + MODULI[MODULI.len() - 1] * TAIL_HIST_BINS;

/// Verdict data from [`TailProfile::rank_correlated`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankTail {
    /// Culprit ranks, ascending.
    pub ranks: Vec<u32>,
    /// Culprits as a fraction of ranks observed in the class.
    pub rank_frac: f64,
    /// Fraction of the tail mass the culprits own.
    pub tail_share: f64,
    /// Culprit per-op mean over the rest's per-op mean.
    pub mean_ratio: f64,
}

/// Verdict data from [`TailProfile::target_correlated`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetTail {
    /// The modulus the concentration shows at.
    pub modulus: u32,
    /// The hot residue class.
    pub residue: u32,
    /// Its share of the tail mass.
    pub tail_share: f64,
    /// Its share of the bulk (sub-cut) mass — low when the tail is
    /// target-correlated but the workload itself is spread.
    pub bulk_share: f64,
}

impl TailProfile {
    /// An empty profile; `stripe_bytes` maps offsets onto stripe indices.
    pub fn new(stripe_bytes: u64) -> Self {
        let stripe_bytes = stripe_bytes.max(1);
        TailProfile {
            geom: LogBins::new(TAIL_HIST_LO, TAIL_HIST_HI, TAIL_HIST_BINS),
            stripe_bytes,
            stripe_shift: stripe_bytes
                .is_power_of_two()
                .then(|| stripe_bytes.trailing_zeros()),
            dense: Vec::new(),
            sparse: FxHashMap::default(),
            residues: vec![0u64; RES_TOTAL],
        }
    }

    /// The duration histogram of records on residue `r` mod `MODULI[mi]`.
    #[inline]
    fn residue_row(&self, mi: usize, r: usize) -> &[u64] {
        let at = RES_OFF[mi] + r * TAIL_HIST_BINS;
        &self.residues[at..at + TAIL_HIST_BINS]
    }

    /// The (created-on-demand) cell for `rank`.
    #[inline]
    fn cell_mut(&mut self, rank: u32) -> &mut RankCell {
        let i = rank as usize;
        if i < DENSE_RANKS {
            if i >= self.dense.len() {
                self.dense.resize_with(i + 1, || None);
            }
            self.dense[i].get_or_insert_with(RankCell::empty)
        } else {
            self.sparse.entry(rank).or_insert_with(RankCell::empty)
        }
    }

    /// All populated cells, dense ranks first (ascending), then spills.
    fn rank_cells(&self) -> impl Iterator<Item = (u32, &RankCell)> {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i as u32, c)))
            .chain(self.sparse.iter().map(|(&r, c)| (r, c)))
    }

    /// Profile every record of `kind` in a trace.
    pub fn from_trace(trace: &Trace, kind: CallKind, stripe_bytes: u64) -> Self {
        let mut p = TailProfile::new(stripe_bytes);
        for r in trace.records.iter().filter(|r| r.call == kind) {
            p.add(r.rank, r.offset, r.secs());
        }
        p
    }

    /// Accumulate one record.
    pub fn add(&mut self, rank: u32, offset: u64, secs: f64) {
        let bin = self.geom.index_clamped(secs);
        self.add_binned(rank, offset, secs, bin);
    }

    /// [`Self::add`] with the duration bin pre-classified. `bin` must
    /// equal `self.geometry().index_clamped(secs)` — batch ingest paths
    /// compute it once via [`tail_bin_table`] and fan it out; passing
    /// any other value corrupts the histograms (an out-of-range bin
    /// panics).
    #[inline]
    pub fn add_binned(&mut self, rank: u32, offset: u64, secs: f64, bin: usize) {
        debug_assert_eq!(bin, self.geom.index_clamped(secs));
        let cell = self.cell_mut(rank);
        cell.counts[bin] += 1;
        cell.secs += secs;
        cell.ops += 1;
        let stripe = match self.stripe_shift {
            Some(sh) => offset >> sh,
            None => offset / self.stripe_bytes,
        };
        // 840 = lcm(2..=8): reducing once preserves every residue while
        // turning the eight divisions into constant-divisor multiplies.
        let s = (stripe % 840) as usize;
        for (mi, &m) in MODULI.iter().enumerate() {
            self.residues[RES_OFF[mi] + (s % m) * TAIL_HIST_BINS + bin] += 1;
        }
    }

    /// The profile's bin geometry.
    pub fn geometry(&self) -> LogBins {
        self.geom
    }

    /// Merge another profile (same stripe geometry); equivalent to having
    /// accumulated both record streams into one profile.
    pub fn merge(&mut self, other: &TailProfile) {
        assert_eq!(
            self.stripe_bytes, other.stripe_bytes,
            "merging tail profiles with different stripe geometry"
        );
        for (rank, cell) in other.rank_cells() {
            let mine = self.cell_mut(rank);
            for (i, &c) in cell.counts.iter().enumerate() {
                mine.counts[i] += c;
            }
            mine.secs += cell.secs;
            mine.ops += cell.ops;
        }
        for (slot, &c) in self.residues.iter_mut().zip(&other.residues) {
            *slot += c;
        }
    }

    /// Ranks that produced at least one record of the class.
    pub fn ranks_observed(&self) -> usize {
        self.rank_cells().count()
    }

    /// Records accumulated.
    pub fn ops(&self) -> u64 {
        self.rank_cells().map(|(_, c)| c.ops).sum()
    }

    /// Is the profile empty?
    pub fn is_empty(&self) -> bool {
        self.rank_cells().next().is_none()
    }

    /// The heaviest rank by class seconds and its share of the class
    /// total, or `None` if empty. Ties break to the lowest rank.
    pub fn top_rank_share(&self) -> Option<(u32, f64)> {
        let total: f64 = {
            let mut rows: Vec<(u32, f64)> = self.rank_cells().map(|(r, c)| (r, c.secs)).collect();
            rows.sort_by_key(|&(r, _)| r);
            rows.iter().map(|&(_, s)| s).sum()
        };
        if total <= 0.0 {
            return None;
        }
        let (rank, secs) = self
            .rank_cells()
            .map(|(r, c)| (r, c.secs))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))?;
        Some((rank, secs / total))
    }

    /// Rank-correlated-tail test: fires when the tail mass (duration mass
    /// in bins beyond `cut`) concentrates on at most
    /// `tail_rank_frac` of the observed ranks — *and* those ranks are
    /// slower per operation overall, which separates a straggler node
    /// (slow on everything) from harmonic arbitration losers (slow on a
    /// rotating subset of operations).
    pub fn rank_correlated(&self, cut: f64, th: &Thresholds) -> Option<RankTail> {
        let ranks_observed = self.ranks_observed();
        if ranks_observed < 8 {
            return None;
        }
        // (rank, tail mass, total secs, total ops, tail events)
        let mut rows: Vec<(u32, f64, f64, u64, u64)> = self
            .rank_cells()
            .map(|(rank, cell)| {
                let (mut mass, mut events) = (0.0, 0u64);
                for (i, &c) in cell.counts.iter().enumerate() {
                    if c > 0 && self.geom.center(i) > cut {
                        mass += c as f64 * self.geom.center(i);
                        events += c;
                    }
                }
                (rank, mass, cell.secs, cell.ops, events)
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let total_mass: f64 = rows.iter().map(|r| r.1).sum();
        let total_events: u64 = rows.iter().map(|r| r.4).sum();
        if total_mass <= 0.0 || (total_events as usize) < th.tail_min_events {
            return None;
        }
        // Smallest prefix of (tail-heaviest) ranks covering the share…
        let mut acc = 0.0;
        let mut k = 0;
        while k < rows.len() && acc < th.tail_rank_share * total_mass {
            acc += rows[k].1;
            k += 1;
        }
        // …extended to peers of comparable mass, so a 4-rank node whose
        // first 3 ranks already cover the share still names all 4.
        while k < rows.len() && k > 0 && rows[k].1 >= 0.5 * rows[k - 1].1 && rows[k].1 > 0.0 {
            acc += rows[k].1;
            k += 1;
        }
        let rank_frac = k as f64 / ranks_observed as f64;
        if rank_frac > th.tail_rank_frac {
            return None;
        }
        let (mut cul_secs, mut cul_ops, mut rest_secs, mut rest_ops) = (0.0, 0u64, 0.0, 0u64);
        for (i, r) in rows.iter().enumerate() {
            if i < k {
                cul_secs += r.2;
                cul_ops += r.3;
            } else {
                rest_secs += r.2;
                rest_ops += r.3;
            }
        }
        if cul_ops == 0 || rest_ops == 0 {
            return None;
        }
        let mean_ratio = (cul_secs / cul_ops as f64) / (rest_secs / rest_ops as f64).max(1e-300);
        if mean_ratio < th.tail_mean_ratio {
            return None;
        }
        let mut culprits: Vec<u32> = rows[..k].iter().map(|r| r.0).collect();
        culprits.sort_unstable();
        Some(RankTail {
            ranks: culprits,
            rank_frac,
            tail_share: acc / total_mass,
            mean_ratio,
        })
    }

    /// Storage-target test: fold the class onto stripe residue classes
    /// and fire when, for some small modulus, one residue owns the tail
    /// while the others do not. The differential is *event-rate* based:
    /// the hot residue's events must land in the tail at ≥2.5× the rate
    /// of everyone else's — which separates "one degraded target" (its
    /// accesses slow, the rest fine) from a workload that simply *uses*
    /// a skewed offset pattern, where every residue in use is slow at
    /// the same rate. A modulus the workload never spreads over (all
    /// events on one residue) carries no differential signal and is
    /// skipped.
    pub fn target_correlated(&self, cut: f64, th: &Thresholds) -> Option<TargetTail> {
        for (mi, &m) in MODULI.iter().enumerate() {
            let mut tails = vec![0.0f64; m];
            let mut bulks = vec![0.0f64; m];
            let mut tail_ev = vec![0u64; m];
            let mut ev = vec![0u64; m];
            for res in 0..m {
                let counts = self.residue_row(mi, res);
                for (i, &c) in counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let center = self.geom.center(i);
                    let mass = c as f64 * center;
                    ev[res] += c;
                    if center > cut {
                        tails[res] += mass;
                        tail_ev[res] += c;
                    } else {
                        bulks[res] += mass;
                    }
                }
            }
            let tail_total: f64 = tails.iter().sum();
            let bulk_total: f64 = bulks.iter().sum();
            let tail_ev_total: u64 = tail_ev.iter().sum();
            if tail_total <= 0.0 || (tail_ev_total as usize) < th.tail_min_events {
                continue;
            }
            let mut best = 0usize;
            for r in 1..m {
                if tails[r] > tails[best] {
                    best = r;
                }
            }
            let rest_ev: u64 = ev.iter().sum::<u64>() - ev[best];
            if ev[best] == 0 || rest_ev == 0 {
                continue;
            }
            let tail_share = tails[best] / tail_total;
            let bulk_share = if bulk_total > 0.0 {
                bulks[best] / bulk_total
            } else {
                0.0
            };
            let hot_rate = tail_ev[best] as f64 / ev[best] as f64;
            let rest_rate = (tail_ev_total - tail_ev[best]) as f64 / rest_ev as f64;
            if tail_share >= th.target_tail_share && hot_rate >= 2.5 * rest_rate {
                return Some(TargetTail {
                    modulus: m as u32,
                    residue: best as u32,
                    tail_share,
                    bulk_share,
                });
            }
        }
        None
    }
}

/// Coefficient of variation, or `None` when undefined.
fn cv(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return None;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt() / mean)
}

/// Quantized-tail test over a fine duration histogram: a retry-on-timeout
/// fault puts the tail at discrete base + k·timeout levels, which show as
/// two or more *narrow* occupied islands beyond the cut, separated by
/// empty territory. One island (a uniform slowdown) or a broad smear
/// (a continuum) both return `None`.
pub fn quantized_tail_levels(hist: &LogHistogram, cut: f64, min_events: usize) -> Option<usize> {
    let counts = hist.counts();
    let tail_total: u64 = (0..hist.bins())
        .filter(|&i| hist.bin_center(i) > cut)
        .map(|i| counts[i])
        .sum();
    if (tail_total as usize) < min_events {
        return None;
    }
    // Occupancy floor: stray single events must not mint islands.
    let sig = (tail_total / 64).max(2);
    let mut islands: Vec<usize> = Vec::new(); // island widths, in bins
    let mut run = 0usize;
    for (i, &count) in counts.iter().enumerate().take(hist.bins()) {
        let significant = hist.bin_center(i) > cut && count >= sig;
        if significant {
            run += 1;
        } else if run > 0 {
            islands.push(run);
            run = 0;
        }
    }
    if run > 0 {
        islands.push(run);
    }
    if islands.len() >= 2 && islands.iter().all(|&w| w <= 3) {
        Some(islands.len())
    } else {
        None
    }
}

/// Fraction of burst gaps that must sit within ±25% of the median gap
/// for the burst train to count as phase-locked (periodic). Exponential
/// (memoryless) gaps only land ~17% of their mass in that band, so a
/// Poisson tail cannot reach it.
const PHASE_LOCK_FRAC: f64 = 0.6;

/// Candidate burst boundaries in units of the mean inter-arrival gap.
/// Each scale is tried in turn; a gap above the boundary closes one
/// burst and opens the next. Several scales are scanned because the
/// right one depends on how many tail events each blackout window
/// catches — every scale is still gated by the phase-lock test.
const BURST_GAP_FACTORS: [f64; 3] = [4.0, 3.0, 2.0];

/// Periodic-burst test over tail-event start times: a duty-cycled fault
/// clusters the tail into regularly spaced bursts. Returns
/// `(bursts, period CV)` when the train is long and regular enough.
///
/// Two stages: the raw gap train itself may be regular (one slow event
/// per blackout window); otherwise events are segmented into bursts at
/// gaps well above the mean and the burst spacing must be phase-locked —
/// at least `PHASE_LOCK_FRAC` (0.6) of the burst gaps within ±25% of their
/// median. Phase lock is what separates a duty-cycled fault from random
/// timeouts: exponential gaps never concentrate that tightly, and
/// windows that catch no tail events only add near-harmonic outliers
/// that the locked majority outvotes.
pub fn periodic_bursts(starts: &[f64], th: &Thresholds) -> Option<(usize, f64)> {
    if starts.len() < th.flaky_min_bursts {
        return None;
    }
    let mut s = starts.to_vec();
    s.sort_by(f64::total_cmp);
    let gaps: Vec<f64> = s.windows(2).map(|w| w[1] - w[0]).collect();
    // The tail events themselves may form the periodic train.
    if let Some(c) = cv(&gaps) {
        if c <= th.flaky_period_cv {
            return Some((s.len(), c));
        }
    }
    let span = s[s.len() - 1] - s[0];
    if span <= 0.0 {
        return None;
    }
    for factor in BURST_GAP_FACTORS {
        let boundary = factor * span / gaps.len() as f64;
        let mut burst_starts = vec![s[0]];
        for (i, g) in gaps.iter().enumerate() {
            if *g > boundary {
                burst_starts.push(s[i + 1]);
            }
        }
        if burst_starts.len() < th.flaky_min_bursts {
            continue;
        }
        let mut burst_gaps: Vec<f64> = burst_starts.windows(2).map(|w| w[1] - w[0]).collect();
        let Some(c) = cv(&burst_gaps) else { continue };
        let mut sorted = burst_gaps.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        burst_gaps.retain(|g| *g >= 0.75 * median && *g <= 1.25 * median);
        let locked = burst_gaps.len() as f64 / sorted.len() as f64;
        if c <= th.flaky_period_cv || locked >= PHASE_LOCK_FRAC {
            return Some((burst_starts.len(), c));
        }
    }
    None
}

/// Minimum number of tail events sharing a start instant to count as a
/// synchronized front (all ranks released from a barrier together).
const FRONT_MIN_GROUP: usize = 8;

/// Fraction of tail events belonging to synchronized fronts above which
/// position-correlated evidence (stripe residues, latency levels) is
/// considered an artifact of the access pattern.
const FRONT_SHARE_VETO: f64 = 0.5;

/// Share of the tail carried by synchronized fronts: groups of at least
/// `FRONT_MIN_GROUP` (8) events whose start times agree to the
/// millisecond. When a barrier releases, every rank issues its next
/// transfer at the same instant and the queue drains slowly — those
/// events are slow because of *where they sit in the access pattern*
/// (the block-aligned first stripe of each phase), so their residue and
/// latency-level structure mimics a degraded target. A genuinely slow
/// resource serves requests one at a time and spreads its tail over
/// distinct instants.
pub fn sync_front_share(starts: &[f64]) -> f64 {
    if starts.is_empty() {
        return 0.0;
    }
    let mut quantized: Vec<i64> = starts.iter().map(|t| (t * 1e3).round() as i64).collect();
    quantized.sort_unstable();
    let (mut covered, mut run, mut prev) = (0usize, 0usize, i64::MIN);
    for q in quantized {
        if q == prev {
            run += 1;
        } else {
            if run >= FRONT_MIN_GROUP {
                covered += run;
            }
            run = 1;
            prev = q;
        }
    }
    if run >= FRONT_MIN_GROUP {
        covered += run;
    }
    covered as f64 / starts.len() as f64
}

/// Attribute a data-class (read/write) tail. Checks run from the most
/// to the least specific evidence: rank concentration (straggler node),
/// stripe-residue concentration (slow OST), periodic bursts (flaky
/// fabric — only when arrival times are available, so snapshot-only
/// consumers skip it), then quantized levels (drop + retry). `None`
/// falls back to the paper's middleware-pathology reading.
///
/// When arrival times are available a tail dominated by synchronized
/// fronts ([`sync_front_share`] ≥ 1/2) attributes to nothing: barrier
/// drains land on block-aligned stripes and quantized service levels,
/// mimicking both a hot residue and a retry ladder. Snapshot-only
/// consumers (no arrival times) cannot apply the veto and stay
/// conservative about residue evidence on their own thresholds.
pub fn attribute_data_tail(
    profile: &TailProfile,
    hist: &LogHistogram,
    tail_starts: Option<&[f64]>,
    median: f64,
    th: &Thresholds,
) -> Option<FaultClass> {
    if median <= 0.0 || profile.is_empty() {
        return None;
    }
    let cut = th.tail_cut(median);
    if profile.rank_correlated(cut, th).is_some() {
        return Some(FaultClass::StragglerNode);
    }
    if let Some(starts) = tail_starts {
        if sync_front_share(starts) >= FRONT_SHARE_VETO {
            return None;
        }
    }
    if profile.target_correlated(cut, th).is_some() {
        return Some(FaultClass::SlowOst);
    }
    if let Some(starts) = tail_starts {
        if periodic_bursts(starts, th).is_some() {
            return Some(FaultClass::FlakyFabric);
        }
    }
    if quantized_tail_levels(hist, cut, th.tail_min_events).is_some() {
        return Some(FaultClass::DropRetry);
    }
    None
}

/// Attribute a metadata-class shoulder: concentrated on one rank it is
/// the GCRM-style serialized metadata storm; spread over the ranks it is
/// the metadata server itself stalling.
pub fn attribute_meta_tail(profile: &TailProfile, th: &Thresholds) -> FaultClass {
    if let Some((_, share)) = profile.top_rank_share() {
        if share >= th.serialized_share {
            return FaultClass::MetadataStorm;
        }
    }
    FaultClass::MdsStall
}

// ---------------------------------------------------------------------------
// Time-windowed evidence: compound and ambiguous verdicts
// ---------------------------------------------------------------------------

/// A (possibly multi-class) attribution verdict for one finding.
///
/// Production faults overlap: a rebuild degrades one OST while a noisy
/// neighbor flaps the fabric. A single `FaultClass` cannot express
/// that, and silently naming one culprit when two are present is worse
/// than saying so. `classes` is always sorted ascending and deduplicated:
///
/// * `ambiguous == false` — every class is independently evidenced
///   (one class: the classic verdict; several: a compound fault whose
///   components were isolated in time, rank space, or call class).
/// * `ambiguous == true` — the evidence could not isolate a single
///   culprit: `classes` are the *candidates* whose tests fire, listed
///   honestly instead of picking a winner.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribution {
    /// Implicated fault classes, ascending and deduplicated, ≥ 1 entry.
    pub classes: Vec<FaultClass>,
    /// True when `classes` are unseparated candidates rather than a
    /// joint verdict.
    pub ambiguous: bool,
}

impl Attribution {
    /// A confident single-class verdict.
    pub fn single(class: FaultClass) -> Self {
        Attribution {
            classes: vec![class],
            ambiguous: false,
        }
    }

    /// A confident verdict over `classes` (sorted and deduplicated
    /// here). Panics if empty — "no attribution" is `None`, not an
    /// empty list.
    pub fn confident(mut classes: Vec<FaultClass>) -> Self {
        classes.sort_unstable();
        classes.dedup();
        assert!(!classes.is_empty(), "attribution needs at least one class");
        Attribution {
            classes,
            ambiguous: false,
        }
    }

    /// An ambiguous verdict listing unseparated candidates.
    pub fn candidates(mut classes: Vec<FaultClass>) -> Self {
        classes.sort_unstable();
        classes.dedup();
        assert!(!classes.is_empty(), "attribution needs at least one class");
        Attribution {
            classes,
            ambiguous: true,
        }
    }

    /// Whether this is a confident single-class verdict for `class` —
    /// the exact shape the pre-compound-era consumers asserted on.
    pub fn is(&self, class: FaultClass) -> bool {
        !self.ambiguous && self.classes == [class]
    }

    /// Whether `class` appears (confidently or as a candidate).
    pub fn implicates(&self, class: FaultClass) -> bool {
        self.classes.contains(&class)
    }

    /// Stable identifier: `"slow-ost"`, `"mds-stall+slow-ost"`,
    /// `"ambiguous(flaky-fabric|straggler-node)"` (matrix tables, CI
    /// artifacts).
    pub fn label(&self) -> String {
        let names: Vec<&str> = self.classes.iter().map(|c| c.name()).collect();
        if self.ambiguous {
            format!("ambiguous({})", names.join("|"))
        } else {
            names.join("+")
        }
    }
}

impl std::fmt::Display for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ambiguous {
            write!(f, "ambiguous between ")?;
        }
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// One tail event with everything the windowed/residual passes need:
/// when it started (integer ns — window assignment must not depend on
/// float rounding), who issued it, and how slow it was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailEvent {
    /// Call entry time, nanoseconds of virtual time.
    pub start_ns: u64,
    /// Issuing rank.
    pub rank: u32,
    /// Call duration, seconds.
    pub secs: f64,
}

impl TailEvent {
    /// Start instant in seconds (the same conversion every detector
    /// uses, so burst tests see identical floats on every path).
    pub fn start_s(&self) -> f64 {
        pio_des::SimTime(self.start_ns).as_secs_f64()
    }
}

/// Per-window slice of the evidence: the same profile + fine histogram
/// pair the global detectors run on, restricted to records whose start
/// time falls in the window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSlot {
    /// Rank/residue decomposition of the window's records.
    pub profile: TailProfile,
    /// Fine duration histogram of the window's records.
    pub hist: LogHistogram,
}

/// Fixed-width time windows of [`TailProfile`] + fine-histogram
/// evidence, indexed by integer division of the record's `start_ns` —
/// exact, so window membership is identical across record order,
/// thread count, shard count, and trace format.
///
/// Slots allocate lazily (only windows that receive records exist) and
/// the index clamps at `max_windows − 1`: a run longer than the covered
/// span pools its late records into the last window, degrading
/// localization gracefully instead of growing without bound.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedProfile {
    width_ns: u64,
    max_windows: usize,
    stripe_bytes: u64,
    fine_bins: usize,
    slots: Vec<Option<Box<WindowSlot>>>,
}

impl WindowedProfile {
    /// Windows of `width_s` simulated seconds, at most `max_windows` of
    /// them; `stripe_bytes`/`fine_bins` fix the slot evidence geometry
    /// (callers pass the same values they use for the global evidence).
    pub fn new(width_s: f64, max_windows: usize, stripe_bytes: u64, fine_bins: usize) -> Self {
        let width_ns = ((width_s * 1e9).round() as u64).max(1);
        WindowedProfile {
            width_ns,
            max_windows: max_windows.max(1),
            stripe_bytes,
            fine_bins,
            slots: Vec::new(),
        }
    }

    /// Window index for a record starting at `start_ns` (clamped into
    /// the last window).
    #[inline]
    pub fn index(&self, start_ns: u64) -> usize {
        ((start_ns / self.width_ns) as usize).min(self.max_windows - 1)
    }

    /// Window width in seconds.
    pub fn width_s(&self) -> f64 {
        self.width_ns as f64 / 1e9
    }

    #[inline]
    fn slot_mut(&mut self, i: usize) -> &mut WindowSlot {
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i].get_or_insert_with(|| {
            Box::new(WindowSlot {
                profile: TailProfile::new(self.stripe_bytes),
                hist: LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, self.fine_bins),
            })
        })
    }

    /// Accumulate one record.
    pub fn add(&mut self, rank: u32, offset: u64, start_ns: u64, secs: f64) {
        let i = self.index(start_ns);
        let slot = self.slot_mut(i);
        slot.profile.add(rank, offset, secs);
        slot.hist.add_clamped(secs);
    }

    /// [`Self::add`] with both duration bins pre-classified (`bin` for
    /// the coarse profile geometry, `fine` for the fine histogram) —
    /// the block ingest path computes them once per record and fans
    /// them out.
    #[inline]
    pub fn add_binned(
        &mut self,
        rank: u32,
        offset: u64,
        start_ns: u64,
        secs: f64,
        bin: usize,
        fine: usize,
    ) {
        let i = self.index(start_ns);
        let slot = self.slot_mut(i);
        slot.profile.add_binned(rank, offset, secs, bin);
        slot.hist.add_clamped_at(fine);
    }

    /// Populated windows, ascending by index.
    pub fn populated(&self) -> impl Iterator<Item = (usize, &WindowSlot)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|s| (i, s)))
    }

    /// Is any window populated?
    pub fn is_empty(&self) -> bool {
        self.populated().next().is_none()
    }
}

/// Tail event count and duration mass beyond `cut` in a fine histogram.
fn hist_tail(hist: &LogHistogram, cut: f64) -> (u64, f64) {
    let counts = hist.counts();
    let mut events = 0u64;
    let mut mass = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 && hist.bin_center(i) > cut {
            events += c;
            mass += c as f64 * hist.bin_center(i);
        }
    }
    (events, mass)
}

/// Everything the windowed attribution sees for one data call class.
/// `windows` and `events` are optional so snapshot-only consumers (no
/// arrival times, no windowed state) degrade to the global chain.
pub struct DataTailEvidence<'a> {
    /// Whole-run rank/residue decomposition.
    pub profile: &'a TailProfile,
    /// Whole-run fine duration histogram.
    pub hist: &'a LogHistogram,
    /// Per-window evidence, when the consumer keeps it.
    pub windows: Option<&'a WindowedProfile>,
    /// Tail events (`secs > cut`), rank-tagged, when arrival times are
    /// available. Order does not matter.
    pub events: Option<&'a [TailEvent]>,
}

/// Which positional test carries a class's fingerprint inside a single
/// window. Fabric bursts are too sparse per window to test positively
/// (a burst train needs a long span), so a `FlakyFabric` primary
/// explains a window *negatively*: only if no *positional* fingerprint
/// claims it — a window decisively owned by a rank set or a stripe
/// target is evidence the fabric primary cannot account for, and it
/// goes to the pooled residual re-chain (which still applies the
/// substantiality and compound-share gates, so a single spurious window
/// cannot flip a single-fault verdict). Per-window *quantized* levels
/// deliberately do not count against a fabric primary: a duty-cycled
/// slowdown produces genuinely level-like durations inside each burst,
/// so that fingerprint is expected under fabric, not residue. The
/// metadata classes never reach this path and count as explained.
fn window_supports(class: FaultClass, slot: &WindowSlot, cut: f64, th: &Thresholds) -> bool {
    match class {
        FaultClass::StragglerNode => slot.profile.rank_correlated(cut, th).is_some(),
        FaultClass::SlowOst => slot.profile.target_correlated(cut, th).is_some(),
        FaultClass::DropRetry => {
            quantized_tail_levels(&slot.hist, cut, th.tail_min_events).is_some()
        }
        FaultClass::FlakyFabric => {
            slot.profile.rank_correlated(cut, th).is_none()
                && slot.profile.target_correlated(cut, th).is_none()
        }
        _ => true,
    }
}

/// Classes (excluding `known`) whose *global* test fires on the
/// whole-run evidence — the candidate list an unexplained residue is
/// ambiguous between.
fn cofiring_classes(
    ev: &DataTailEvidence<'_>,
    starts: Option<&[f64]>,
    cut: f64,
    th: &Thresholds,
    known: &[FaultClass],
) -> Vec<FaultClass> {
    let mut out = Vec::new();
    let mut consider = |class: FaultClass, fires: bool| {
        if fires && !known.contains(&class) {
            out.push(class);
        }
    };
    consider(
        FaultClass::StragglerNode,
        ev.profile.rank_correlated(cut, th).is_some(),
    );
    consider(
        FaultClass::SlowOst,
        ev.profile.target_correlated(cut, th).is_some(),
    );
    consider(
        FaultClass::FlakyFabric,
        starts.is_some_and(|s| periodic_bursts(s, th).is_some()),
    );
    consider(
        FaultClass::DropRetry,
        quantized_tail_levels(ev.hist, cut, th.tail_min_events).is_some(),
    );
    out
}

/// Attribute a data-class tail with time-windowed evidence: the global
/// priority chain ([`attribute_data_tail`]) names a primary class, then
/// two residual passes look for a *second* fault the primary's evidence
/// does not explain:
///
/// * **Time residual** — active windows (≥ `tail_min_events` tail
///   events) where the primary's own positional test does not fire are
///   pooled and re-attributed with the full chain. A fault that was
///   only live in part of the run (a scheduled episode) is confirmed on
///   exactly the windows it owned.
/// * **Rank residual** — when the primary is a straggler node, the tail
///   events of the *non-culprit* ranks are re-tested (burst periodicity,
///   quantized levels), since a concurrent whole-run fault hides under
///   the culprits' mass in every window.
///
/// A residue that is substantial (≥ `compound_share` of the tail) but
/// that no test explains yields an **ambiguous** verdict listing the
/// classes whose global tests fire; a residue that is explained yields
/// a confident compound verdict. With no primary, per-window
/// classification takes over: each active window votes with its
/// positional tests, window groups are confirmed class-by-class, and
/// unclassified windows are pooled for the burst test. Thresholds keep
/// every pass conservative, so a clean single-fault run keeps its
/// single-class verdict.
pub fn attribute_data_tail_windowed(
    ev: &DataTailEvidence<'_>,
    median: f64,
    th: &Thresholds,
) -> Option<Attribution> {
    if median <= 0.0 || ev.profile.is_empty() {
        return None;
    }
    let cut = th.tail_cut(median);
    let starts: Option<Vec<f64>> = ev.events.map(|es| es.iter().map(|e| e.start_s()).collect());
    let primary = attribute_data_tail(ev.profile, ev.hist, starts.as_deref(), median, th);

    let mut confident: Vec<FaultClass> = primary.into_iter().collect();
    let mut unresolved: Vec<FaultClass> = Vec::new();

    // --- time residual ---
    if let Some(windows) = ev.windows {
        let (_, total_mass) = hist_tail(ev.hist, cut);
        struct Active<'s> {
            idx: usize,
            slot: &'s WindowSlot,
            events: u64,
            mass: f64,
        }
        let active: Vec<Active<'_>> = windows
            .populated()
            .filter_map(|(idx, slot)| {
                let (events, mass) = hist_tail(&slot.hist, cut);
                ((events as usize) >= th.tail_min_events).then_some(Active {
                    idx,
                    slot,
                    events,
                    mass,
                })
            })
            .collect();

        // Pool a window subset and run the full chain over it.
        let pooled_verdict = |group: &[&Active<'_>]| -> Option<FaultClass> {
            let mut profile = group[0].slot.profile.clone();
            let mut hist = group[0].slot.hist.clone();
            for a in &group[1..] {
                profile.merge(&a.slot.profile);
                hist.merge(&a.slot.hist);
            }
            let idxs: Vec<usize> = group.iter().map(|a| a.idx).collect();
            let pooled_starts: Option<Vec<f64>> = ev.events.map(|es| {
                es.iter()
                    .filter(|e| idxs.contains(&windows.index(e.start_ns)))
                    .map(|e| e.start_s())
                    .collect()
            });
            attribute_data_tail(&profile, &hist, pooled_starts.as_deref(), median, th)
        };
        let substantial = |events: u64, mass: f64| {
            (events as usize) >= th.tail_min_events && mass >= th.compound_share * total_mass
        };

        match primary {
            Some(p) => {
                let residue: Vec<&Active<'_>> = active
                    .iter()
                    .filter(|a| !window_supports(p, a.slot, cut, th))
                    .collect();
                let ev_n: u64 = residue.iter().map(|a| a.events).sum();
                let mass: f64 = residue.iter().map(|a| a.mass).sum();
                if !residue.is_empty() && substantial(ev_n, mass) {
                    match pooled_verdict(&residue) {
                        Some(c) if c != p => confident.push(c),
                        Some(_) => {}
                        None => unresolved.extend(cofiring_classes(
                            ev,
                            starts.as_deref(),
                            cut,
                            th,
                            &confident,
                        )),
                    }
                }
            }
            None => {
                // No global verdict: per-window classification votes,
                // then each class group is confirmed on its own pool.
                let mut groups: Vec<(FaultClass, Vec<&Active<'_>>)> = Vec::new();
                let mut leftover: Vec<&Active<'_>> = Vec::new();
                for a in &active {
                    let class = if a.slot.profile.rank_correlated(cut, th).is_some() {
                        Some(FaultClass::StragglerNode)
                    } else if a.slot.profile.target_correlated(cut, th).is_some() {
                        Some(FaultClass::SlowOst)
                    } else if quantized_tail_levels(&a.slot.hist, cut, th.tail_min_events).is_some()
                    {
                        Some(FaultClass::DropRetry)
                    } else {
                        None
                    };
                    match class {
                        Some(c) => match groups.iter_mut().find(|(g, _)| *g == c) {
                            Some((_, v)) => v.push(a),
                            None => groups.push((c, vec![a])),
                        },
                        None => leftover.push(a),
                    }
                }
                for (_, group) in &groups {
                    let ev_n: u64 = group.iter().map(|a| a.events).sum();
                    let mass: f64 = group.iter().map(|a| a.mass).sum();
                    if substantial(ev_n, mass) {
                        if let Some(c) = pooled_verdict(group) {
                            confident.push(c);
                        }
                    }
                }
                let ev_n: u64 = leftover.iter().map(|a| a.events).sum();
                let mass: f64 = leftover.iter().map(|a| a.mass).sum();
                if !leftover.is_empty() && substantial(ev_n, mass) {
                    match pooled_verdict(&leftover) {
                        Some(c) => confident.push(c),
                        None if !confident.is_empty() => unresolved.extend(cofiring_classes(
                            ev,
                            starts.as_deref(),
                            cut,
                            th,
                            &confident,
                        )),
                        None => {}
                    }
                }
            }
        }
    }

    // --- rank residual ---
    if primary == Some(FaultClass::StragglerNode) {
        if let (Some(rt), Some(events)) = (ev.profile.rank_correlated(cut, th), ev.events) {
            let residual: Vec<&TailEvent> = events
                .iter()
                .filter(|e| e.secs > cut && !rt.ranks.contains(&e.rank))
                .collect();
            let tail_total = events.iter().filter(|e| e.secs > cut).count();
            if residual.len() >= th.tail_min_events
                && (residual.len() as f64) >= th.compound_share * tail_total as f64
            {
                let rs: Vec<f64> = residual.iter().map(|e| e.start_s()).collect();
                let mut rh = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 2 * TAIL_HIST_BINS);
                for e in &residual {
                    rh.add_clamped(e.secs);
                }
                if sync_front_share(&rs) < FRONT_SHARE_VETO && periodic_bursts(&rs, th).is_some() {
                    confident.push(FaultClass::FlakyFabric);
                } else if quantized_tail_levels(&rh, cut, th.tail_min_events).is_some() {
                    confident.push(FaultClass::DropRetry);
                } else {
                    unresolved.extend(cofiring_classes(ev, starts.as_deref(), cut, th, &confident));
                }
            }
        }
    }

    confident.sort_unstable();
    confident.dedup();
    unresolved.retain(|c| !confident.contains(c));
    unresolved.sort_unstable();
    unresolved.dedup();
    if !unresolved.is_empty() {
        let mut all = confident;
        all.extend(unresolved);
        return Some(Attribution::candidates(all));
    }
    if confident.is_empty() {
        None
    } else {
        Some(Attribution::confident(confident))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th() -> Thresholds {
        Thresholds::default()
    }

    fn uniform_profile(ranks: u32, per_rank: usize, secs: f64) -> TailProfile {
        let mut p = TailProfile::new(1 << 20);
        for rank in 0..ranks {
            for i in 0..per_rank {
                p.add(rank, (rank as u64 * 64 + i as u64) << 20, secs);
            }
        }
        p
    }

    #[test]
    fn planted_straggler_is_rank_correlated() {
        let mut p = uniform_profile(16, 32, 0.02);
        // Ranks 0–3 slow on everything (their 32 ops land at 0.6 s).
        for rank in 0..4u32 {
            for i in 0..32 {
                p.add(rank, (i as u64) << 20, 0.6);
            }
        }
        let rt = p.rank_correlated(0.04, &th()).expect("must fire");
        assert_eq!(rt.ranks, vec![0, 1, 2, 3]);
        assert!(rt.tail_share > 0.9);
        assert!(rt.mean_ratio > 2.0);
    }

    #[test]
    fn uniform_tail_is_not_rank_correlated() {
        let mut p = uniform_profile(16, 32, 0.02);
        // Every rank contributes the same tail mass.
        for rank in 0..16u32 {
            for i in 0..4 {
                p.add(rank, (i as u64) << 20, 0.5);
            }
        }
        assert!(p.rank_correlated(0.04, &th()).is_none());
    }

    #[test]
    fn hot_residue_is_target_correlated_only_differentially() {
        let mut p = TailProfile::new(1 << 20);
        // Bulk spread over stripes 0..48 (uniform mod 3), tail only on
        // stripes ≡ 1 (mod 3).
        for rank in 0..16u32 {
            for s in 0..48u64 {
                let secs = if s % 3 == 1 { 0.8 } else { 0.02 };
                p.add(rank, s << 20, secs);
            }
        }
        let tt = p.target_correlated(0.04, &th()).expect("must fire");
        assert_eq!(tt.modulus, 3);
        assert_eq!(tt.residue, 1);
        assert!(tt.tail_share > 0.95);

        // A workload whose tail *and* bulk share the residue pattern
        // (strided access, not a slow target) must stay quiet: the slow
        // events scatter across ranks' stripe sets, so no modulus shows
        // a *differential* concentration.
        let mut q = TailProfile::new(1 << 20);
        for rank in 0..16u32 {
            for i in 0..48u64 {
                let secs = if (i + rank as u64).is_multiple_of(10) {
                    0.8
                } else {
                    0.02
                };
                q.add(rank, (i * 3 + 1) << 20, secs); // everything ≡ 1 (mod 3)
            }
        }
        assert!(q.target_correlated(0.04, &th()).is_none());
    }

    #[test]
    fn profile_merge_equals_union() {
        let mut a = TailProfile::new(1 << 20);
        let mut b = TailProfile::new(1 << 20);
        let mut whole = TailProfile::new(1 << 20);
        for i in 0..500u64 {
            let (rank, off, secs) = ((i % 13) as u32, i << 18, 0.001 * (1 + i % 97) as f64);
            if i % 2 == 0 {
                a.add(rank, off, secs);
            } else {
                b.add(rank, off, secs);
            }
            whole.add(rank, off, secs);
        }
        a.merge(&b);
        assert_eq!(a.ops(), whole.ops());
        assert_eq!(a.residues, whole.residues);
        let merged: Vec<_> = a.rank_cells().collect();
        for (i, (rank, cell)) in whole.rank_cells().enumerate() {
            let (got_rank, got) = merged[i];
            assert_eq!(got_rank, rank);
            assert_eq!(got.counts, cell.counts);
            assert_eq!(got.ops, cell.ops);
            assert!((got.secs - cell.secs).abs() < 1e-9);
        }
    }

    #[test]
    fn quantized_levels_need_separated_narrow_islands() {
        let mut hist = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 96);
        for _ in 0..500 {
            hist.add_clamped(0.02);
        }
        // Two retry levels: 0.35 s and 0.65 s.
        for _ in 0..30 {
            hist.add_clamped(0.35);
        }
        for _ in 0..8 {
            hist.add_clamped(0.65);
        }
        assert_eq!(quantized_tail_levels(&hist, 0.04, 16), Some(2));

        // One uniform slow cluster: not quantized.
        let mut one = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 96);
        for _ in 0..500 {
            one.add_clamped(0.02);
        }
        for _ in 0..40 {
            one.add_clamped(0.16);
        }
        assert_eq!(quantized_tail_levels(&one, 0.04, 16), None);

        // A broad continuum: not quantized.
        let mut smear = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 96);
        for _ in 0..500 {
            smear.add_clamped(0.02);
        }
        for i in 0..200 {
            smear.add_clamped(0.05 * 1.06f64.powi(i % 40));
        }
        assert_eq!(quantized_tail_levels(&smear, 0.04, 16), None);
    }

    #[test]
    fn periodic_bursts_fire_on_duty_cycle_not_on_noise() {
        // 20 blackout windows, 3 tail events each, period 0.25 s.
        let mut starts = Vec::new();
        for w in 0..20 {
            for j in 0..3 {
                starts.push(w as f64 * 0.25 + j as f64 * 0.004);
            }
        }
        assert!(periodic_bursts(&starts, &th()).is_some());

        // Pseudo-random arrivals (LCG, high bits): no periodicity.
        let mut x = 0x2545f4914f6cdd1du64;
        let noisy: Vec<f64> = (0..60)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 10_000) as f64 * 1e-3
            })
            .collect();
        assert!(periodic_bursts(&noisy, &th()).is_none());
    }

    #[test]
    fn meta_attribution_splits_on_rank_concentration() {
        let mut storm = TailProfile::new(1 << 20);
        for i in 0..200u64 {
            storm.add(0, i << 12, 0.3);
        }
        assert_eq!(
            attribute_meta_tail(&storm, &th()),
            FaultClass::MetadataStorm
        );

        let mut stall = TailProfile::new(1 << 20);
        for rank in 0..16u32 {
            for i in 0..20u64 {
                stall.add(rank, i << 12, if i % 7 == 0 { 0.7 } else { 0.01 });
            }
        }
        assert_eq!(attribute_meta_tail(&stall, &th()), FaultClass::MdsStall);
    }

    #[test]
    fn fault_class_names_are_stable() {
        assert_eq!(FaultClass::SlowOst.name(), "slow-ost");
        assert_eq!(FaultClass::StragglerNode.name(), "straggler-node");
        assert!(FaultClass::MetadataStorm.to_string().contains("metadata"));
    }

    #[test]
    fn attribution_labels_are_stable() {
        assert_eq!(Attribution::single(FaultClass::SlowOst).label(), "slow-ost");
        let compound = Attribution::confident(vec![FaultClass::SlowOst, FaultClass::MdsStall]);
        assert_eq!(compound.label(), "slow-ost+mds-stall");
        assert!(compound.implicates(FaultClass::MdsStall));
        assert!(!compound.is(FaultClass::SlowOst));
        let amb = Attribution::candidates(vec![
            FaultClass::StragglerNode,
            FaultClass::FlakyFabric,
            FaultClass::FlakyFabric,
        ]);
        assert_eq!(amb.label(), "ambiguous(flaky-fabric|straggler-node)");
        assert!(amb.implicates(FaultClass::FlakyFabric));
        assert!(!amb.is(FaultClass::FlakyFabric));
    }

    #[test]
    fn window_index_uses_integer_ns_division() {
        let w = WindowedProfile::new(2.0, 16, 1 << 20, 96);
        assert_eq!(w.index(0), 0);
        assert_eq!(w.index(1_999_999_999), 0);
        assert_eq!(w.index(2_000_000_000), 1); // boundary lands right
        assert_eq!(w.index(2_000_000_001), 1);
        // Clamped into the last window.
        assert_eq!(w.index(u64::MAX), 15);
        assert_eq!(w.width_s(), 2.0);
    }

    #[test]
    fn windowed_profile_separates_episodes() {
        let mut w = WindowedProfile::new(1.0, 8, 1 << 20, 96);
        // Window 0: fast ops; window 3: slow ops.
        for i in 0..32u64 {
            w.add(i as u32 % 8, i << 20, i * 10_000_000, 0.01);
            w.add(i as u32 % 8, i << 20, 3_000_000_000 + i * 10_000_000, 0.5);
        }
        let populated: Vec<usize> = w.populated().map(|(i, _)| i).collect();
        assert_eq!(populated, vec![0, 3]);
        let (ev0, _) = hist_tail(&w.populated().next().unwrap().1.hist, 0.1);
        let (ev3, _) = hist_tail(&w.populated().nth(1).unwrap().1.hist, 0.1);
        assert_eq!(ev0, 0);
        assert_eq!(ev3, 32);
    }

    /// Build the canonical two-episode compound: an early window where
    /// the tail concentrates on one stripe residue (slow OST) and a
    /// late window where it arrives in periodic bursts (flaky fabric).
    fn two_episode_evidence() -> (TailProfile, LogHistogram, WindowedProfile, Vec<TailEvent>) {
        let mut profile = TailProfile::new(1 << 20);
        let mut hist = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 96);
        let mut windows = WindowedProfile::new(2.0, 16, 1 << 20, 96);
        let mut events = Vec::new();
        let mut feed = |rank: u32, offset: u64, start_ns: u64, secs: f64| {
            profile.add(rank, offset, secs);
            hist.add_clamped(secs);
            windows.add(rank, offset, start_ns, secs);
            if secs > 0.04 {
                events.push(TailEvent {
                    start_ns,
                    rank,
                    secs,
                });
            }
        };
        // Bulk everywhere: 16 ranks, spread stripes, 20 ms.
        for rank in 0..16u32 {
            for i in 0..60u64 {
                feed(rank, (i * 16 + rank as u64) << 20, i * 100_000_000, 0.02);
            }
        }
        // Episode A, 0–2 s: tail on stripes ≡ 1 (mod 4), scattered starts.
        for rank in 0..16u32 {
            for i in 0..3u64 {
                let start = 100_000_000 + rank as u64 * 110_000_000 + i * 37_000_000;
                feed(rank, (i * 4 + 1) << 20, start, 0.9);
            }
        }
        // Episode B, 8–14 s: periodic bursts every 0.25 s, spread stripes.
        for b in 0..24u64 {
            for j in 0..3u64 {
                let start = 8_000_000_000 + b * 250_000_000 + j * 3_000_000;
                feed((b * 3 + j) as u32 % 16, (b * 16 + j * 5) << 20, start, 0.7);
            }
        }
        (profile, hist, windows, events)
    }

    #[test]
    fn time_separated_pair_yields_compound_verdict() {
        let (profile, hist, windows, events) = two_episode_evidence();
        let a = attribute_data_tail_windowed(
            &DataTailEvidence {
                profile: &profile,
                hist: &hist,
                windows: Some(&windows),
                events: Some(&events),
            },
            0.02,
            &th(),
        )
        .expect("compound evidence must attribute");
        assert!(
            !a.ambiguous
                && a.implicates(FaultClass::SlowOst)
                && a.implicates(FaultClass::FlakyFabric),
            "want confident slow-ost + flaky-fabric, got {a:?}"
        );
    }

    #[test]
    fn single_fault_evidence_keeps_single_verdict() {
        // Same generator, episode A only: windowing must not invent a
        // second class.
        let mut profile = TailProfile::new(1 << 20);
        let mut hist = LogHistogram::new(TAIL_HIST_LO, TAIL_HIST_HI, 96);
        let mut windows = WindowedProfile::new(2.0, 16, 1 << 20, 96);
        let mut events = Vec::new();
        for rank in 0..16u32 {
            for i in 0..60u64 {
                let (offset, start, secs) = ((i * 16 + rank as u64) << 20, i * 100_000_000, 0.02);
                profile.add(rank, offset, secs);
                hist.add_clamped(secs);
                windows.add(rank, offset, start, secs);
            }
            for i in 0..6u64 {
                let start = 100_000_000 + rank as u64 * 110_000_000 + i * 37_000_000;
                let offset = (i * 4 + 1) << 20;
                profile.add(rank, offset, 0.9);
                hist.add_clamped(0.9);
                windows.add(rank, offset, start, 0.9);
                events.push(TailEvent {
                    start_ns: start,
                    rank,
                    secs: 0.9,
                });
            }
        }
        let a = attribute_data_tail_windowed(
            &DataTailEvidence {
                profile: &profile,
                hist: &hist,
                windows: Some(&windows),
                events: Some(&events),
            },
            0.02,
            &th(),
        )
        .expect("planted slow target must attribute");
        assert!(a.is(FaultClass::SlowOst), "want single slow-ost, got {a:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::diagnosis::Thresholds;
    use proptest::prelude::*;

    fn th() -> Thresholds {
        Thresholds::default()
    }

    proptest! {
        /// A tail spread uniformly over the ranks is never pinned on a
        /// rank subset, whatever the population and latency scale.
        #[test]
        fn uniform_tail_never_rank_correlates(
            ranks in 8u32..48,
            bulk_per_rank in 4u64..40,
            tail_per_rank in 1u64..6,
            slow_num in 16u64..256,
        ) {
            let mut p = TailProfile::new(1 << 20);
            let slow = slow_num as f64 / 64.0; // exactly representable
            for rank in 0..ranks {
                for i in 0..bulk_per_rank {
                    p.add(rank, i * (1 << 20), 1.0 / 64.0);
                }
                for i in 0..tail_per_rank {
                    p.add(rank, i * (1 << 20), slow);
                }
            }
            prop_assert_eq!(p.rank_correlated(0.1, &th()), None);
        }

        /// A planted straggler subset always fires and is named exactly,
        /// as long as it is a small fraction of the job.
        #[test]
        fn planted_straggler_always_fires_and_is_named(
            ranks in 16u32..64,
            culprit_count in 1u32..4,
            slow_num in 64u64..512,
        ) {
            let culprit_count = culprit_count.min(ranks / 8);
            let mut p = TailProfile::new(1 << 20);
            let slow = slow_num as f64 / 64.0;
            for rank in 0..ranks {
                for i in 0..20u64 {
                    let secs = if rank < culprit_count { slow } else { 1.0 / 64.0 };
                    p.add(rank, i * (1 << 20), secs);
                }
            }
            let hit = p.rank_correlated(0.5, &th());
            prop_assert!(hit.is_some(), "straggler not flagged: {:?}", hit);
            let want: Vec<u32> = (0..culprit_count).collect();
            prop_assert_eq!(hit.unwrap().ranks, want);
        }

        /// Verdicts are invariant under the ingest order of the records:
        /// the profile is a pure aggregate.
        #[test]
        fn verdicts_are_shuffle_invariant(
            events in proptest::collection::vec(
                (0u32..16, 0u64..64, 1u64..512),
                16..200,
            ),
            seed in 0u64..1024,
        ) {
            // Dyadic latencies make the accumulated sums exact, so the
            // comparison is bit-for-bit rather than epsilon-close.
            let build = |order: &[usize]| {
                let mut p = TailProfile::new(1 << 20);
                for &i in order {
                    let (rank, block, num) = events[i];
                    p.add(rank, block * (1 << 20), num as f64 / 64.0);
                }
                p
            };
            let forward: Vec<usize> = (0..events.len()).collect();
            let mut shuffled = forward.clone();
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for i in (1..shuffled.len()).rev() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                shuffled.swap(i, ((x >> 33) % (i as u64 + 1)) as usize);
            }
            let (a, b) = (build(&forward), build(&shuffled));
            let cut = 2.0;
            prop_assert_eq!(a.rank_correlated(cut, &th()), b.rank_correlated(cut, &th()));
            prop_assert_eq!(a.target_correlated(cut, &th()), b.target_correlated(cut, &th()));
            prop_assert_eq!(a.top_rank_share(), b.top_rank_share());
            prop_assert_eq!(a.ops(), b.ops());
        }

        /// Window membership is a pure function of `start_ns`: whatever
        /// order events arrive in — including events exactly on window
        /// boundaries — the per-window evidence is bit-identical.
        #[test]
        fn windowed_profile_is_insertion_order_invariant(
            events in proptest::collection::vec(
                // (rank, block, dyadic latency numerator, window qs)
                (0u32..16, 0u64..64, 1u64..512, 0u64..40),
                8..120,
            ),
            boundary_events in proptest::collection::vec(
                (0u32..16, 0u64..64, 1u64..512, 0u64..8, 0i64..3),
                0..16,
            ),
            seed in 0u64..1024,
        ) {
            const WIDTH_NS: u64 = 2_000_000_000;
            // Regular events land mid-window; boundary events land
            // exactly at k·width − 1, k·width, and k·width + 1 ns.
            let mut all: Vec<(u32, u64, f64, u64)> = events
                .iter()
                .map(|&(rank, block, num, q)| {
                    (rank, block << 20, num as f64 / 64.0, q * 250_000_000 + 7)
                })
                .collect();
            for &(rank, block, num, k, off) in &boundary_events {
                let base = (k + 1) * WIDTH_NS;
                let start = (base as i64 + (off - 1)) as u64;
                all.push((rank, block << 20, num as f64 / 64.0, start));
            }
            let build = |order: &[usize]| {
                let mut w = WindowedProfile::new(2.0, 16, 1 << 20, 96);
                for &i in order {
                    let (rank, offset, secs, start_ns) = all[i];
                    w.add(rank, offset, start_ns, secs);
                }
                w
            };
            let forward: Vec<usize> = (0..all.len()).collect();
            let mut shuffled = forward.clone();
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for i in (1..shuffled.len()).rev() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                shuffled.swap(i, ((x >> 33) % (i as u64 + 1)) as usize);
            }
            // Dyadic latencies make the f64 accumulators exact, so the
            // windows compare bit-for-bit, boundary events included.
            prop_assert_eq!(build(&forward), build(&shuffled));
        }
    }
}
