//! Mode (peak) detection and harmonic-structure recognition.
//!
//! The paper reads distributions by their modes: Figure 1(c)'s three
//! peaks sit at completion times T, T/2 and T/4 — "the second and fourth
//! harmonic" of the fair-share rate — implying that one or two tasks per
//! node monopolized the node's I/O. `find_modes` extracts peaks from a
//! KDE-smoothed density; `harmonic_structure` tests whether the peak
//! locations form that ×2 ladder.

use crate::empirical::EmpiricalDist;
use crate::kde::Kde;

/// One detected mode of a distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Location of the peak.
    pub location: f64,
    /// Density height at the peak.
    pub height: f64,
    /// Approximate probability mass attributed to the peak (its basin).
    pub mass: f64,
}

/// Find modes of `dist` by KDE smoothing on a `grid_points` grid.
/// Peaks with height below `min_height_frac` of the tallest peak are
/// dropped. Returned modes are sorted by location.
pub fn find_modes(dist: &EmpiricalDist, grid_points: usize, min_height_frac: f64) -> Vec<Mode> {
    // Undersmooth relative to Silverman: mode finding on multimodal data
    // needs to resolve peaks Silverman's unimodal-optimal bandwidth blurs.
    let bw = 0.5 * Kde::silverman_bandwidth(dist);
    let kde = Kde::with_bandwidth(dist, bw.max(f64::MIN_POSITIVE));
    let grid = kde.grid(grid_points);
    find_modes_on_grid(&grid, min_height_frac)
}

/// Mode detection over an explicit `(t, density)` grid (exposed for
/// testing and for densities produced by convolution).
pub fn find_modes_on_grid(grid: &[(f64, f64)], min_height_frac: f64) -> Vec<Mode> {
    if grid.len() < 3 {
        return Vec::new();
    }
    // Local maxima.
    let mut peaks: Vec<usize> = Vec::new();
    for i in 1..grid.len() - 1 {
        if grid[i].1 > grid[i - 1].1 && grid[i].1 >= grid[i + 1].1 {
            peaks.push(i);
        }
    }
    let tallest = peaks.iter().map(|&i| grid[i].1).fold(0.0f64, f64::max);
    if tallest <= 0.0 {
        return Vec::new();
    }
    peaks.retain(|&i| grid[i].1 >= min_height_frac * tallest);

    // Prominence filter: two adjacent peaks separated by a shallow valley
    // (valley ≥ 80% of the shorter peak) are ripples of one mode — keep
    // the taller. Without this a numerically flat density fragments into
    // dozens of micro-modes.
    const VALLEY_FRAC: f64 = 0.8;
    loop {
        let mut merged = false;
        let mut k = 0;
        while k + 1 < peaks.len() {
            let (a, b) = (peaks[k], peaks[k + 1]);
            let valley = (a..=b).map(|i| grid[i].1).fold(f64::INFINITY, f64::min);
            let shorter = grid[a].1.min(grid[b].1);
            if valley >= VALLEY_FRAC * shorter {
                let drop = if grid[a].1 < grid[b].1 { k } else { k + 1 };
                peaks.remove(drop);
                merged = true;
            } else {
                k += 1;
            }
        }
        if !merged {
            break;
        }
    }

    // Basin boundaries: minima between consecutive surviving peaks.
    let dt = grid[1].0 - grid[0].0;
    let mut modes = Vec::new();
    for (k, &pi) in peaks.iter().enumerate() {
        let left = if k == 0 {
            0
        } else {
            // Minimum between previous peak and this one.
            let prev = peaks[k - 1];
            (prev..=pi)
                .min_by(|&a, &b| grid[a].1.total_cmp(&grid[b].1))
                .unwrap_or(pi)
        };
        let right = if k + 1 == peaks.len() {
            grid.len() - 1
        } else {
            let next = peaks[k + 1];
            (pi..=next)
                .min_by(|&a, &b| grid[a].1.total_cmp(&grid[b].1))
                .unwrap_or(pi)
        };
        let mass: f64 = grid[left..=right].iter().map(|&(_, f)| f * dt).sum();
        modes.push(Mode {
            location: grid[pi].0,
            height: grid[pi].1,
            mass,
        });
    }
    modes
}

/// A recognized harmonic ladder among mode locations.
#[derive(Debug, Clone, PartialEq)]
pub struct HarmonicStructure {
    /// The fundamental (slowest) mode location — "T", the fair-share time.
    pub fundamental: f64,
    /// Harmonic orders found: 1 for T, 2 for T/2, 4 for T/4, …
    pub orders: Vec<u32>,
}

/// Test whether `modes` (sorted by location) contain a fundamental T plus
/// at least one mode near T/2ᵏ (within `tol` relative error). The paper's
/// R / R/2 / R/4 fingerprint corresponds to orders `[1, 2, 4]`.
pub fn harmonic_structure(modes: &[Mode], tol: f64) -> Option<HarmonicStructure> {
    if modes.len() < 2 {
        return None;
    }
    let fundamental = modes.last().unwrap().location;
    if fundamental <= 0.0 {
        return None;
    }
    let mut orders = vec![1u32];
    for m in &modes[..modes.len() - 1] {
        for order in [2u32, 3, 4, 8] {
            let expect = fundamental / order as f64;
            if (m.location - expect).abs() <= tol * expect {
                orders.push(order);
                break;
            }
        }
    }
    if orders.len() >= 2 {
        orders.sort_unstable();
        orders.dedup();
        Some(HarmonicStructure {
            fundamental,
            orders,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three clusters at 8, 16, 32 — the IOR harmonic shape.
    fn harmonic_samples() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..60 {
            v.push(32.0 + (i % 7) as f64 * 0.1);
        }
        for i in 0..30 {
            v.push(16.0 + (i % 5) as f64 * 0.08);
        }
        for i in 0..15 {
            v.push(8.0 + (i % 3) as f64 * 0.06);
        }
        v
    }

    #[test]
    fn finds_three_modes() {
        let d = EmpiricalDist::new(&harmonic_samples());
        let modes = find_modes(&d, 512, 0.05);
        assert_eq!(modes.len(), 3, "{modes:?}");
        assert!((modes[0].location - 8.0).abs() < 1.0);
        assert!((modes[1].location - 16.0).abs() < 1.0);
        assert!((modes[2].location - 32.0).abs() < 1.0);
        // Mass ordering follows sample counts.
        assert!(modes[2].mass > modes[1].mass);
        assert!(modes[1].mass > modes[0].mass);
    }

    #[test]
    fn recognizes_the_harmonic_ladder() {
        let d = EmpiricalDist::new(&harmonic_samples());
        let modes = find_modes(&d, 512, 0.05);
        let h = harmonic_structure(&modes, 0.15).expect("harmonics");
        assert!((h.fundamental - 32.0).abs() < 1.0);
        assert_eq!(h.orders, vec![1, 2, 4]);
    }

    #[test]
    fn unimodal_has_no_harmonics() {
        let samples: Vec<f64> = (0..200)
            .map(|i| 10.0 + ((i * 37) % 100) as f64 * 0.004)
            .collect();
        let d = EmpiricalDist::new(&samples);
        let modes = find_modes(&d, 256, 0.1);
        assert_eq!(modes.len(), 1, "{modes:?}");
        assert!(harmonic_structure(&modes, 0.15).is_none());
    }

    #[test]
    fn non_harmonic_bimodal_rejected() {
        // Peaks at 10 and 13: ratio 1.3, no harmonic relation.
        let mut samples = Vec::new();
        for i in 0..100 {
            samples.push(10.0 + (i % 5) as f64 * 0.02);
            samples.push(13.0 + (i % 5) as f64 * 0.02);
        }
        let d = EmpiricalDist::new(&samples);
        let modes = find_modes(&d, 512, 0.1);
        assert!(modes.len() >= 2);
        assert!(harmonic_structure(&modes, 0.1).is_none());
    }

    #[test]
    fn min_height_filters_noise_peaks() {
        let mut samples = harmonic_samples();
        samples.push(100.0); // lone outlier should not be a mode at 0.2
        let d = EmpiricalDist::new(&samples);
        let strict = find_modes(&d, 512, 0.2);
        assert!(strict.iter().all(|m| m.location < 50.0));
    }

    #[test]
    fn grid_mode_mass_sums_to_about_one() {
        let d = EmpiricalDist::new(&harmonic_samples());
        let modes = find_modes(&d, 512, 0.02);
        let total: f64 = modes.iter().map(|m| m.mass).sum();
        assert!(total > 0.9 && total < 1.1, "{total}");
    }

    #[test]
    fn degenerate_grids_are_safe() {
        assert!(find_modes_on_grid(&[], 0.1).is_empty());
        assert!(find_modes_on_grid(&[(0.0, 1.0), (1.0, 2.0)], 0.1).is_empty());
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        assert!(find_modes_on_grid(&flat, 0.1).is_empty());
    }
}
