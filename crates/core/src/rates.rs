//! Rate curves and duration extraction from traces — the time-series view
//! of the paper's Figures 1(b), 4(b,e), 6(b,e,h,k), and the sample sets
//! its histograms are built from.

use pio_trace::{CallKind, Record, Trace};

/// An instantaneous aggregate-rate time series: `(t_seconds, mb_per_s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCurve {
    /// Bin width in seconds.
    pub dt: f64,
    /// `(bin start time, rate in MB/s)` per bin.
    pub points: Vec<(f64, f64)>,
}

impl RateCurve {
    /// Peak rate.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// Time-average rate over the curve.
    pub fn average(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, r)| r).sum::<f64>() / self.points.len() as f64
    }

    /// Fraction of bins with rate below `threshold` MB/s — the "most of
    /// the run time was spent at rates of less than 2 GB/s" observation.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|&&(_, r)| r < threshold).count() as f64
            / self.points.len() as f64
    }
}

/// Build the aggregate rate curve for records matching `pred`, spreading
/// each record's bytes uniformly over its `[start, end]` interval and
/// summing per `dt`-second bin.
pub fn rate_curve<F: Fn(&Record) -> bool>(trace: &Trace, dt: f64, pred: F) -> RateCurve {
    assert!(dt > 0.0);
    let end = trace.end_time().as_secs_f64();
    let bins = (end / dt).ceil() as usize + 1;
    let mut acc = vec![0.0f64; bins.max(1)];
    for r in trace.records.iter().filter(|r| pred(r) && r.bytes > 0) {
        let (t0, t1) = (r.start().as_secs_f64(), r.end().as_secs_f64());
        let mb = r.bytes as f64 / 1e6;
        if t1 <= t0 {
            // Instantaneous record: deposit in its bin.
            let idx = ((t0 / dt) as usize).min(acc.len() - 1);
            acc[idx] += mb;
            continue;
        }
        let rate = mb / (t1 - t0); // MB per second while active
        let first = ((t0 / dt) as usize).min(acc.len() - 1);
        let last = ((t1 / dt) as usize).min(acc.len() - 1);
        for (idx, slot) in acc.iter_mut().enumerate().take(last + 1).skip(first) {
            let bin_start = idx as f64 * dt;
            let bin_end = bin_start + dt;
            let overlap = (t1.min(bin_end) - t0.max(bin_start)).max(0.0);
            *slot += rate * overlap;
        }
    }
    RateCurve {
        dt,
        points: acc
            .iter()
            .enumerate()
            .map(|(i, &mb)| (i as f64 * dt, mb / dt))
            .collect(),
    }
}

/// Aggregate write-rate curve (the usual Figure 6 panel).
pub fn write_rate_curve(trace: &Trace, dt: f64) -> RateCurve {
    rate_curve(trace, dt, |r| r.call == CallKind::Write)
}

/// Aggregate read-rate curve.
pub fn read_rate_curve(trace: &Trace, dt: f64) -> RateCurve {
    rate_curve(trace, dt, |r| r.call == CallKind::Read)
}

/// Durations (seconds) of records of `kind`, optionally restricted to a
/// phase range — the raw material of every histogram in the paper.
pub fn durations(trace: &Trace, kind: CallKind, phases: Option<(u32, u32)>) -> Vec<f64> {
    trace
        .records
        .iter()
        .filter(|r| r.call == kind)
        .filter(|r| match phases {
            Some((lo, hi)) => r.phase >= lo && r.phase <= hi,
            None => true,
        })
        .map(Record::secs)
        .collect()
}

/// Size-normalized samples in seconds-per-MB for records matching `pred` —
/// the paper's Figure 6 normalization for mixed transfer sizes ("we
/// normalize the histograms to present MB/sec along the top and sec/MB
/// along the bottom").
pub fn sec_per_mb_samples<F: Fn(&Record) -> bool>(trace: &Trace, pred: F) -> Vec<f64> {
    trace
        .records
        .iter()
        .filter(|r| pred(r))
        .filter_map(Record::sec_per_mb)
        .collect()
}

/// Per-rank total I/O seconds — the basis of the serialized-rank detector.
pub fn per_rank_io_time(trace: &Trace) -> Vec<(u32, f64)> {
    let mut map = std::collections::HashMap::new();
    for r in trace.records.iter().filter(|r| r.call.is_io()) {
        *map.entry(r.rank).or_insert(0.0) += r.secs();
    }
    let mut v: Vec<(u32, f64)> = map.into_iter().collect();
    v.sort_by_key(|&(r, _)| r);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::TraceMeta;

    fn rec(rank: u32, call: CallKind, bytes: u64, t0: f64, t1: f64, phase: u32) -> Record {
        Record {
            rank,
            call,
            fd: 3,
            offset: 0,
            bytes,
            start_ns: (t0 * 1e9) as u64,
            end_ns: (t1 * 1e9) as u64,
            phase,
        }
    }

    fn trace() -> Trace {
        let mut t = Trace::new(TraceMeta::default());
        // 10 MB write over [0,1]; 10 MB write over [1,2]; read over [0,2].
        t.push(rec(0, CallKind::Write, 10_000_000, 0.0, 1.0, 0));
        t.push(rec(1, CallKind::Write, 10_000_000, 1.0, 2.0, 0));
        t.push(rec(2, CallKind::Read, 20_000_000, 0.0, 2.0, 1));
        t
    }

    #[test]
    fn write_rate_is_flat_ten_mb_s() {
        let c = write_rate_curve(&trace(), 0.5);
        // 10 MB/s during [0,2).
        for &(t, r) in &c.points {
            if t < 2.0 {
                assert!((r - 10.0).abs() < 1e-9, "{t} {r}");
            }
        }
        assert!((c.peak() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn read_rate_is_separate() {
        let c = read_rate_curve(&trace(), 0.5);
        for &(t, r) in &c.points {
            if t < 2.0 {
                assert!((r - 10.0).abs() < 1e-9, "{t} {r}");
            }
        }
    }

    #[test]
    fn bytes_are_conserved_in_the_curve() {
        let c = write_rate_curve(&trace(), 0.3);
        let total_mb: f64 = c.points.iter().map(|&(_, r)| r * c.dt).sum();
        assert!((total_mb - 20.0).abs() < 1e-6, "{total_mb}");
    }

    #[test]
    fn instantaneous_records_deposit_once() {
        let mut t = Trace::new(TraceMeta::default());
        t.push(rec(0, CallKind::Write, 5_000_000, 1.0, 1.0, 0));
        let c = write_rate_curve(&t, 0.5);
        let total_mb: f64 = c.points.iter().map(|&(_, r)| r * c.dt).sum();
        assert!((total_mb - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_counts_slow_bins() {
        let c = write_rate_curve(&trace(), 0.5);
        assert!(c.fraction_below(5.0) <= 0.5); // only trailing empty bins
        assert_eq!(c.fraction_below(1e9), 1.0);
    }

    #[test]
    fn durations_filter_by_phase() {
        let t = trace();
        assert_eq!(durations(&t, CallKind::Write, None).len(), 2);
        assert_eq!(durations(&t, CallKind::Read, Some((1, 1))).len(), 1);
        assert_eq!(durations(&t, CallKind::Read, Some((0, 0))).len(), 0);
        let d = durations(&t, CallKind::Write, Some((0, 0)));
        assert_eq!(d, vec![1.0, 1.0]);
    }

    #[test]
    fn sec_per_mb_normalizes() {
        let t = trace();
        let s = sec_per_mb_samples(&t, |r| r.call == CallKind::Write);
        // 1 s per 10 MB = 0.1 s/MB.
        assert_eq!(s.len(), 2);
        assert!((s[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn per_rank_io_time_sums() {
        let t = trace();
        let v = per_rank_io_time(&t);
        assert_eq!(v, vec![(0, 1.0), (1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::default();
        let c = write_rate_curve(&t, 1.0);
        assert_eq!(c.peak(), 0.0);
        assert_eq!(c.average(), 0.0);
        assert!(durations(&t, CallKind::Write, None).is_empty());
    }
}
