//! Linear-bin histograms — the paper's Figure 1(c)/2 representation of
//! completion-time ensembles.

use serde::{Deserialize, Serialize};

/// A fixed-range, uniform-bin histogram over `f64` samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` (kept out of the bins but counted).
    underflow: u64,
    /// Samples at or above `hi`.
    overflow: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram geometry");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build from samples with the range chosen from the data
    /// (5% padding above the max; `bins` uniform bins).
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = if max > 0.0 { max * 1.05 } else { max + 1.0 };
        let lo = min.min(0.0);
        let mut h = Histogram::new(lo, hi.max(lo + 1e-12), bins);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Record one sample.
    pub fn add(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (v - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Bin count.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count of bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples that fell inside the range.
    pub fn in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Out-of-range counts `(underflow, overflow)`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Normalized density estimate at bin centers: `(center, f̂(center))`,
    /// integrating to ≈1 over the in-range mass.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let n = self.in_range() as f64;
        let w = self.bin_width();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = if n > 0.0 { c as f64 / (n * w) } else { 0.0 };
                (self.bin_center(i), d)
            })
            .collect()
    }

    /// Merge a histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "merging histograms with different geometry"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Index of the fullest bin, or `None` if empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.in_range() == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
    }

    /// Range `(lo, hi)`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_and_totals() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.6, 9.99, -1.0, 10.0, 25.0] {
            h.add(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 7);
        assert_eq!(h.in_range(), 4);
    }

    #[test]
    fn from_samples_covers_all() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let h = Histogram::from_samples(&samples, 20);
        assert_eq!(h.in_range(), 100);
        assert_eq!(h.out_of_range(), (0, 0));
    }

    #[test]
    fn density_integrates_to_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let h = Histogram::from_samples(&samples, 16);
        let mass: f64 = h.density().iter().map(|&(_, d)| d * h.bin_width()).sum();
        assert!((mass - 1.0).abs() < 1e-9, "{mass}");
    }

    #[test]
    fn mode_bin_finds_the_peak() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..5 {
            h.add(7.2);
        }
        h.add(1.0);
        assert_eq!(h.mode_bin(), Some(7));
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.add(1.0);
        b.add(1.0);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(4), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_geometry_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn bin_center_is_midpoint() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Mass conservation: every added sample is counted exactly once.
        #[test]
        fn mass_is_conserved(samples in proptest::collection::vec(-100.0f64..100.0, 1..300)) {
            let mut h = Histogram::new(-10.0, 10.0, 13);
            for &s in &samples {
                h.add(s);
            }
            prop_assert_eq!(h.total() as usize, samples.len());
        }

        /// from_samples never loses a sample to under/overflow.
        #[test]
        fn from_samples_loses_nothing(samples in proptest::collection::vec(0.0f64..1e6, 1..300)) {
            let h = Histogram::from_samples(&samples, 32);
            prop_assert_eq!(h.in_range() as usize, samples.len());
        }
    }
}
