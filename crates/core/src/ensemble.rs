//! Multi-run ensembles — the paper's central object.
//!
//! An *experiment* is a choice of parameters; a *run* is one execution of
//! it. Individual event times are erratic between runs, but "the modes by
//! which they occur are stable". `Ensemble` holds one distribution per
//! run and measures exactly that stability.

use crate::distance::{ks_statistic, wasserstein1};
use crate::empirical::EmpiricalDist;
use crate::modes::{find_modes, Mode};

/// A set of runs of one experiment, each reduced to a distribution of
/// per-event times.
#[derive(Debug, Clone)]
pub struct Ensemble {
    runs: Vec<EmpiricalDist>,
}

/// Stability measurement across an ensemble's runs.
#[derive(Debug, Clone)]
pub struct Stability {
    /// Largest pairwise KS statistic.
    pub max_ks: f64,
    /// Mean pairwise KS statistic.
    pub mean_ks: f64,
    /// Largest pairwise Wasserstein-1 distance, normalized by the pooled
    /// median (scale-free).
    pub max_w1_rel: f64,
    /// Relative spread of run medians: (max − min) / pooled median.
    pub median_spread: f64,
}

impl Ensemble {
    /// Build from per-run sample sets; empty runs are rejected.
    pub fn new(runs: Vec<EmpiricalDist>) -> Self {
        assert!(!runs.is_empty(), "empty ensemble");
        Ensemble { runs }
    }

    /// Build from raw per-run sample vectors.
    pub fn from_samples(runs: &[Vec<f64>]) -> Self {
        Ensemble::new(runs.iter().map(|r| EmpiricalDist::new(r)).collect())
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// The runs' distributions.
    pub fn distributions(&self) -> &[EmpiricalDist] {
        &self.runs
    }

    /// All samples pooled into one distribution.
    pub fn pooled(&self) -> EmpiricalDist {
        let all: Vec<f64> = self
            .runs
            .iter()
            .flat_map(|d| d.samples().iter().cloned())
            .collect();
        EmpiricalDist::new(&all)
    }

    /// Pairwise stability metrics (requires ≥ 2 runs).
    pub fn stability(&self) -> Option<Stability> {
        if self.runs.len() < 2 {
            return None;
        }
        let pooled_median = self.pooled().median().abs().max(1e-300);
        let mut max_ks = 0.0f64;
        let mut sum_ks = 0.0f64;
        let mut pairs = 0usize;
        let mut max_w1 = 0.0f64;
        for i in 0..self.runs.len() {
            for j in i + 1..self.runs.len() {
                let ks = ks_statistic(&self.runs[i], &self.runs[j]);
                let w1 = wasserstein1(&self.runs[i], &self.runs[j]);
                max_ks = max_ks.max(ks);
                sum_ks += ks;
                max_w1 = max_w1.max(w1);
                pairs += 1;
            }
        }
        let medians: Vec<f64> = self.runs.iter().map(EmpiricalDist::median).collect();
        let mmax = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mmin = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        Some(Stability {
            max_ks,
            mean_ks: sum_ks / pairs as f64,
            max_w1_rel: max_w1 / pooled_median,
            median_spread: (mmax - mmin) / pooled_median,
        })
    }

    /// The paper's reproducibility verdict: distributions of different
    /// runs are "almost identical". True when the worst pairwise KS is
    /// below `ks_threshold` (0.1–0.2 is reasonable for ~1000 events).
    pub fn is_reproducible(&self, ks_threshold: f64) -> bool {
        match self.stability() {
            Some(s) => s.max_ks <= ks_threshold,
            None => true,
        }
    }

    /// Mean-of-run-means and std-of-run-means: how tightly the first
    /// moment reproduces.
    pub fn mean_of_means(&self) -> (f64, f64) {
        let means: Vec<f64> = self.runs.iter().map(EmpiricalDist::mean).collect();
        let m = means.iter().sum::<f64>() / means.len() as f64;
        let v = means.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / means.len() as f64;
        (m, v.sqrt())
    }

    /// The paper's strongest claim is that the *modes* of the
    /// distribution are stable run to run. Detect modes in every run and
    /// greedily match them across runs within `tol` relative location
    /// error; returns the matched mode groups (location = mean across
    /// runs) together with the fraction of runs each mode appeared in.
    pub fn stable_modes(&self, min_height_frac: f64, tol: f64) -> Vec<(Mode, f64)> {
        let per_run: Vec<Vec<Mode>> = self
            .runs
            .iter()
            .map(|d| find_modes(d, 512, min_height_frac))
            .collect();
        let mut groups: Vec<(Vec<Mode>, f64)> = Vec::new();
        for modes in &per_run {
            for m in modes {
                match groups.iter_mut().find(|(g, _)| {
                    let loc = g.iter().map(|x| x.location).sum::<f64>() / g.len() as f64;
                    (m.location - loc).abs() <= tol * loc.abs().max(1e-12)
                }) {
                    Some((g, _)) => g.push(*m),
                    None => groups.push((vec![*m], 0.0)),
                }
            }
        }
        let n_runs = self.runs.len() as f64;
        let mut out: Vec<(Mode, f64)> = groups
            .into_iter()
            .map(|(g, _)| {
                let k = g.len() as f64;
                let mode = Mode {
                    location: g.iter().map(|m| m.location).sum::<f64>() / k,
                    height: g.iter().map(|m| m.height).sum::<f64>() / k,
                    mass: g.iter().map(|m| m.mass).sum::<f64>() / k,
                };
                (mode, (k / n_runs).min(1.0))
            })
            .collect();
        out.sort_by(|a, b| a.0.location.total_cmp(&b.0.location));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same underlying shape, different "runs" (jittered).
    fn stable_runs(n_runs: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n_runs)
            .map(|r| {
                (0..n)
                    .map(|i| {
                        let base = (i % 10) as f64;
                        base + 0.01 * ((i * 7 + r * 13) % 11) as f64
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn stable_ensemble_is_reproducible() {
        let e = Ensemble::from_samples(&stable_runs(5, 500));
        let s = e.stability().unwrap();
        assert!(s.max_ks < 0.1, "{s:?}");
        assert!(s.median_spread < 0.05, "{s:?}");
        assert!(e.is_reproducible(0.15));
        let (m, sd) = e.mean_of_means();
        assert!(sd / m < 0.01);
    }

    #[test]
    fn shifted_run_breaks_reproducibility() {
        let mut runs = stable_runs(4, 500);
        // One run pathologically slow (e.g. the buggy read-ahead hit it).
        runs.push((0..500).map(|i| 50.0 + (i % 10) as f64).collect());
        let e = Ensemble::from_samples(&runs);
        let s = e.stability().unwrap();
        assert!(s.max_ks > 0.9, "{s:?}");
        assert!(!e.is_reproducible(0.2));
        assert!(s.median_spread > 1.0);
    }

    #[test]
    fn pooled_contains_all_samples() {
        let e = Ensemble::from_samples(&stable_runs(3, 100));
        assert_eq!(e.pooled().n(), 300);
        assert_eq!(e.runs(), 3);
    }

    #[test]
    fn single_run_has_no_stability_but_is_reproducible() {
        let e = Ensemble::from_samples(&stable_runs(1, 50));
        assert!(e.stability().is_none());
        assert!(e.is_reproducible(0.01));
    }

    #[test]
    #[should_panic]
    fn empty_ensemble_rejected() {
        Ensemble::new(vec![]);
    }

    /// Tri-modal runs: the mode structure must survive across runs.
    #[test]
    fn modes_are_stable_across_runs() {
        let runs: Vec<Vec<f64>> = (0..4)
            .map(|r| {
                let mut v = Vec::new();
                for i in 0..240 {
                    let base = match i % 8 {
                        0 => 8.0,
                        1..=2 => 16.0,
                        _ => 32.0,
                    };
                    v.push(base + ((i * 13 + r * 7) % 23) as f64 * 0.02);
                }
                v
            })
            .collect();
        let e = Ensemble::from_samples(&runs);
        let stable = e.stable_modes(0.1, 0.15);
        // All three modes present in every run.
        let full: Vec<_> = stable.iter().filter(|&&(_, f)| f >= 1.0).collect();
        assert_eq!(full.len(), 3, "{stable:?}");
        assert!((full[0].0.location - 8.0).abs() < 1.0);
        assert!((full[1].0.location - 16.0).abs() < 1.5);
        assert!((full[2].0.location - 32.0).abs() < 2.0);
    }

    #[test]
    fn transient_mode_has_low_presence() {
        let mut runs: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..200).map(|i| 10.0 + (i % 17) as f64 * 0.02).collect())
            .collect();
        // One run has an extra cluster far away.
        runs[0].extend((0..60).map(|i| 50.0 + (i % 5) as f64 * 0.05));
        let e = Ensemble::from_samples(&runs);
        let stable = e.stable_modes(0.05, 0.15);
        let far = stable
            .iter()
            .find(|(m, _)| m.location > 40.0)
            .expect("far mode");
        assert!(far.1 <= 0.3, "transient mode presence {far:?}");
        let main = stable
            .iter()
            .find(|(m, _)| (m.location - 10.0).abs() < 2.0)
            .unwrap();
        assert!(main.1 >= 1.0);
    }
}
