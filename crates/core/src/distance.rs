//! Distribution distances — quantifying the paper's reproducibility
//! claim: "the statistical representations are almost identical" across
//! runs (and even across file systems) while the traces differ wildly.

use crate::empirical::EmpiricalDist;

/// Two-sample Kolmogorov–Smirnov statistic: `sup_t |F_a(t) − F_b(t)|`.
pub fn ks_statistic(a: &EmpiricalDist, b: &EmpiricalDist) -> f64 {
    let xa = a.samples();
    let xb = b.samples();
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < xa.len() || j < xb.len() {
        match (xa.get(i), xb.get(j)) {
            (Some(&va), Some(&vb)) => {
                if va <= vb {
                    i += 1;
                }
                if vb <= va {
                    j += 1;
                }
            }
            (Some(_), None) => i += 1,
            (None, Some(_)) => j += 1,
            (None, None) => break,
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Wasserstein-1 (earth mover's) distance between two empirical
/// distributions: `∫ |F_a − F_b| dt`.
pub fn wasserstein1(a: &EmpiricalDist, b: &EmpiricalDist) -> f64 {
    // Merge the support points and integrate the CDF gap.
    let mut points: Vec<f64> = a.samples().iter().chain(b.samples()).cloned().collect();
    points.sort_by(f64::total_cmp);
    points.dedup();
    let mut acc = 0.0;
    for w in points.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let gap = (a.cdf(t0) - b.cdf(t0)).abs();
        acc += gap * (t1 - t0);
    }
    acc
}

/// Same-sample-count Wasserstein via sorted-sample mean absolute
/// difference (exact when `a.n() == b.n()`); falls back to the general
/// form otherwise.
pub fn wasserstein1_fast(a: &EmpiricalDist, b: &EmpiricalDist) -> f64 {
    if a.n() == b.n() {
        a.samples()
            .iter()
            .zip(b.samples())
            .map(|(&x, &y)| (x - y).abs())
            .sum::<f64>()
            / a.n() as f64
    } else {
        wasserstein1(a, b)
    }
}

/// Relative difference of medians — a crude but robust "same mode
/// structure" check used alongside KS in stability reports.
pub fn median_shift(a: &EmpiricalDist, b: &EmpiricalDist) -> f64 {
    let (ma, mb) = (a.median(), b.median());
    let denom = ma.abs().max(mb.abs());
    if denom == 0.0 {
        0.0
    } else {
        (ma - mb).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, shift: f64) -> EmpiricalDist {
        EmpiricalDist::new(
            &(0..n)
                .map(|i| i as f64 / n as f64 + shift)
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = uniform(100, 0.0);
        let b = uniform(100, 0.0);
        assert_eq!(ks_statistic(&a, &b), 0.0);
        assert!(wasserstein1(&a, &b) < 1e-12);
        assert!(wasserstein1_fast(&a, &b) < 1e-12);
        assert_eq!(median_shift(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_ks_one() {
        let a = uniform(50, 0.0);
        let b = uniform(50, 10.0);
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
        // W1 equals the shift for translated distributions.
        assert!((wasserstein1(&a, &b) - 10.0).abs() < 0.05);
        assert!((wasserstein1_fast(&a, &b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn small_shift_small_distance() {
        let a = uniform(1000, 0.0);
        let b = uniform(1000, 0.01);
        let ks = ks_statistic(&a, &b);
        assert!(ks > 0.0 && ks < 0.05, "{ks}");
        let w = wasserstein1_fast(&a, &b);
        assert!((w - 0.01).abs() < 1e-9, "{w}");
    }

    #[test]
    fn ks_is_symmetric() {
        let a = uniform(64, 0.0);
        let b = uniform(100, 0.2);
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
        assert!((wasserstein1(&a, &b) - wasserstein1(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn different_sizes_supported() {
        let a = uniform(30, 0.0);
        let b = uniform(300, 0.0);
        assert!(ks_statistic(&a, &b) < 0.05);
        assert!(wasserstein1(&a, &b) < 0.05);
    }

    #[test]
    fn median_shift_is_relative() {
        let a = EmpiricalDist::new(&[10.0, 10.0, 10.0]);
        let b = EmpiricalDist::new(&[12.0, 12.0, 12.0]);
        assert!((median_shift(&a, &b) - 2.0 / 12.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// KS is within [0,1], zero on self, symmetric.
        #[test]
        fn ks_axioms(
            xs in proptest::collection::vec(-10.0f64..10.0, 2..100),
            ys in proptest::collection::vec(-10.0f64..10.0, 2..100),
        ) {
            let a = EmpiricalDist::new(&xs);
            let b = EmpiricalDist::new(&ys);
            let d = ks_statistic(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!(ks_statistic(&a, &a) < 1e-12);
            prop_assert!((d - ks_statistic(&b, &a)).abs() < 1e-12);
        }

        /// W1 is nonnegative, zero on self, symmetric, and bounded by the
        /// support diameter.
        #[test]
        fn w1_axioms(
            xs in proptest::collection::vec(-10.0f64..10.0, 2..80),
            ys in proptest::collection::vec(-10.0f64..10.0, 2..80),
        ) {
            let a = EmpiricalDist::new(&xs);
            let b = EmpiricalDist::new(&ys);
            let d = wasserstein1(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert!(wasserstein1(&a, &a) < 1e-12);
            prop_assert!((d - wasserstein1(&b, &a)).abs() < 1e-9);
            let diam = a.max().max(b.max()) - a.min().min(b.min());
            prop_assert!(d <= diam + 1e-9);
        }

        /// Fast W1 agrees with the general form on equal sizes.
        #[test]
        fn w1_fast_agrees(
            xs in proptest::collection::vec(-10.0f64..10.0, 40),
            ys in proptest::collection::vec(-10.0f64..10.0, 40),
        ) {
            let a = EmpiricalDist::new(&xs);
            let b = EmpiricalDist::new(&ys);
            prop_assert!((wasserstein1_fast(&a, &b) - wasserstein1(&a, &b)).abs() < 1e-6);
        }
    }
}
