//! The fault × workload matrix: every `pio-fault` fault class run
//! against a workload chosen to expose its ensemble signature, with the
//! paper's detectors doing the attribution.
//!
//! Each cell runs three simulations per seed:
//!
//! 1. a **baseline** (no fault plan) that must *not* show the signature,
//! 2. the **faulted** run that must show it and attribute it correctly,
//! 3. a **repeat** of the faulted run that must be bit-identical —
//!    fault plans are deterministic given `(plan, seed)`.
//!
//! The matrix is the executable statement of the crate's thesis: fault
//! classes are distinguishable *from the shape of the ensemble alone*
//! (right shoulder vs. per-phase drift vs. rank correlation). Every
//! cell asserts the verdict of the *shared* detectors — the same
//! [`pio_core::diagnose`] attribution the batch report and the
//! streaming diagnoser print — rather than re-deriving its own
//! thresholds, so a matrix pass certifies the production detectors.

use pio_core::attribution::{quantized_tail_levels, FaultClass, WindowedProfile};
use pio_core::diagnosis::{detect_progressive_deterioration, run_verdict, Thresholds, Verdict};
use pio_core::EmpiricalDist;
use pio_core::{diagnose, Finding};
use pio_fault::{Fault, FaultPlan, FaultSchedule};
use pio_fs::FsConfig;
use pio_mpi::program::{Job, Op, Program};
use pio_mpi::{RunConfig, RunReport, Runner};
use pio_trace::CallKind;
use pio_workloads::IorConfig;

/// What a cell's faulted run must be attributed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expect {
    /// The cell asserts a non-attributed shape (the deterioration ramp).
    Shape,
    /// Exactly this single class, nothing else.
    Single(FaultClass),
    /// A compound plan: the verdict must implicate *both* classes —
    /// either a confident compound verdict or an honest `Ambiguous`
    /// listing them — and no class outside the pair.
    Pair(FaultClass, FaultClass),
}

impl Expect {
    /// The classes this expectation injects (empty for `Shape`).
    pub fn classes(&self) -> Vec<FaultClass> {
        match self {
            Expect::Shape => Vec::new(),
            Expect::Single(c) => vec![*c],
            Expect::Pair(a, b) => vec![*a, *b],
        }
    }
}

/// One fault × workload cell.
pub struct Scenario {
    /// Fault-class label (matrix row).
    pub fault: &'static str,
    /// Workload label (matrix column).
    pub workload: &'static str,
    /// The signature this cell asserts, for the report table.
    pub expect: &'static str,
    /// The attribution `diagnose` must produce on the faulted run.
    pub expected: Expect,
    plan: FaultPlan,
    job: Job,
    fs: FsConfig,
    #[allow(clippy::type_complexity)]
    detect: Box<dyn Fn(&RunReport) -> Result<String, String>>,
}

impl Scenario {
    /// The cell's fault plan (for reuse outside the matrix, e.g. the
    /// attribution corpus test).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The cell's workload.
    pub fn job(&self) -> &Job {
        &self.job
    }

    /// The cell's platform configuration.
    pub fn fs(&self) -> &FsConfig {
        &self.fs
    }
}

/// Outcome of one cell at one seed.
pub struct CellOutcome {
    /// Fault-class label.
    pub fault: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Seed of this row.
    pub seed: u64,
    /// `Ok(signature detail)` when the faulted run shows the expected
    /// signature, `Err(reason)` otherwise.
    pub signature: Result<String, String>,
    /// The baseline run does *not* show the signature.
    pub baseline_clean: bool,
    /// Two faulted runs with the same seed produced identical traces.
    pub reproducible: bool,
}

impl CellOutcome {
    /// Did every assertion of the cell hold?
    pub fn pass(&self) -> bool {
        self.signature.is_ok() && self.baseline_clean && self.reproducible
    }
}

/// The whole-run verdict `diagnose` produces over a run's trace.
pub fn verdict_of(res: &RunReport) -> Verdict {
    run_verdict(&diagnose(res.trace()))
}

/// Assert that `diagnose` attributes exactly `want` — nothing less (the
/// fault must be named) and nothing more (no cross-contamination from a
/// second, wrong verdict).
fn expect_class(res: &RunReport, want: FaultClass) -> Result<(), String> {
    let v = verdict_of(res);
    if v == Verdict::Single(want) {
        Ok(())
    } else {
        Err(format!(
            "verdict {}, want exactly {}",
            v.label(),
            want.name()
        ))
    }
}

/// Assert that a compound plan's verdict names *both* injected classes
/// — confidently, or as an honest `Ambiguous` candidate list — and
/// nothing outside the pair.
fn expect_pair(res: &RunReport, a: FaultClass, b: FaultClass) -> Result<String, String> {
    let v = verdict_of(res);
    if !v.implicates(a) || !v.implicates(b) {
        return Err(format!(
            "verdict {} does not name both {} and {}",
            v.label(),
            a.name(),
            b.name()
        ));
    }
    if let Some(extra) = v.classes().iter().find(|c| **c != a && **c != b) {
        return Err(format!(
            "verdict {} implicates {} beyond the injected pair",
            v.label(),
            extra.name()
        ));
    }
    Ok(v.label())
}

/// A read-heavy IOR: per-task 1 MiB calls so every data RPC lands on a
/// single OST — faults touching a minority of resources surface as a
/// minority of slow *events* (a shoulder), not a uniform shift.
fn read_heavy(tasks: u32, repetitions: u32) -> Job {
    IorConfig {
        tasks,
        block_bytes: 8 << 20,
        segments: 8,
        repetitions,
        read_back: true,
        file_per_process: false,
    }
    .job()
}

/// Paced 1 MiB reads: each rank reads on a fixed compute cadence with a
/// per-rank stagger, so the OSTs never see a barrier burst and the
/// baseline distribution stays tight — queueing noise would otherwise
/// put a right shoulder on the *healthy* ensemble.
fn paced_reads(tasks: u32, reads_per_rank: u32, gap_s: f64) -> Job {
    use pio_des::SimSpan;
    const MB: u64 = 1 << 20;
    let programs = (0..tasks)
        .map(|t| {
            let mut ops = vec![
                Op::Open { file: 0 },
                Op::Barrier,
                // Spread rank start times over several gaps: the first
                // read of every rank would otherwise arrive as one burst
                // whose queue drain puts a tail on the baseline.
                Op::Compute {
                    span: SimSpan::from_secs_f64(t as f64 * gap_s * 0.37),
                },
            ];
            for i in 0..reads_per_rank {
                // Deterministic cadence jitter (0.7-1.3x the gap) so the
                // ranks fall out of lockstep: resonant arrivals would
                // queue at the OSTs and put a tail on the baseline.
                let jitter = 0.7 + 0.6 * ((t * 31 + i * 17) % 16) as f64 / 16.0;
                ops.push(Op::Compute {
                    span: SimSpan::from_secs_f64(gap_s * jitter),
                });
                ops.push(Op::ReadAt {
                    file: 0,
                    offset: (t as u64 * reads_per_rank as u64 + i as u64) * MB,
                    bytes: MB,
                });
            }
            ops.push(Op::Close { file: 0 });
            Program { ops }
        })
        .collect();
    Job {
        programs,
        files: vec![pio_mpi::program::FileSpec { shared: true }],
    }
}

/// A metadata-heavy job: every rank issues a stream of small metadata
/// reads spread over virtual time (staggered by rank, paced by compute),
/// so recurring MDS blackout windows catch a fraction of them.
fn meta_heavy(tasks: u32, ops_per_rank: u32) -> Job {
    use pio_des::SimSpan;
    let programs = (0..tasks)
        .map(|t| {
            let mut ops = vec![
                Op::Open { file: 0 },
                Op::Barrier,
                // Stagger ranks so arrivals cover the stall period.
                Op::Compute {
                    span: SimSpan::from_secs_f64(t as f64 * 0.007),
                },
            ];
            for i in 0..ops_per_rank {
                ops.push(Op::Compute {
                    span: SimSpan::from_secs_f64(0.2),
                });
                ops.push(Op::MetaRead {
                    file: 0,
                    offset: (t as u64 * ops_per_rank as u64 + i as u64) * 4096,
                    bytes: 4096,
                });
            }
            ops.push(Op::Close { file: 0 });
            Program { ops }
        })
        .collect();
    Job {
        programs,
        files: vec![pio_mpi::program::FileSpec { shared: true }],
    }
}

/// Paced reads with an interleaved metadata stream: each read is
/// followed by a small `MetaRead`, so one job exercises *both* the data
/// path (OSTs) and the metadata path (MDS). A compound plan touching
/// one fault per path then yields two shoulders on separate call
/// classes — the cleanest compound-verdict evidence there is.
fn paced_mixed(tasks: u32, reads_per_rank: u32, gap_s: f64) -> Job {
    use pio_des::SimSpan;
    const MB: u64 = 1 << 20;
    let programs = (0..tasks)
        .map(|t| {
            let mut ops = vec![
                Op::Open { file: 0 },
                Op::Barrier,
                Op::Compute {
                    span: SimSpan::from_secs_f64(t as f64 * gap_s * 0.37),
                },
            ];
            for i in 0..reads_per_rank {
                let jitter = 0.7 + 0.6 * ((t * 31 + i * 17) % 16) as f64 / 16.0;
                ops.push(Op::Compute {
                    span: SimSpan::from_secs_f64(gap_s * jitter),
                });
                ops.push(Op::ReadAt {
                    file: 0,
                    offset: (t as u64 * reads_per_rank as u64 + i as u64) * MB,
                    bytes: MB,
                });
                ops.push(Op::MetaRead {
                    file: 0,
                    offset: (t as u64 * reads_per_rank as u64 + i as u64) * 4096,
                    bytes: 4096,
                });
            }
            ops.push(Op::Close { file: 0 });
            Program { ops }
        })
        .collect();
    Job {
        programs,
        files: vec![pio_mpi::program::FileSpec { shared: true }],
    }
}

/// Build the matrix for one scale. `scale` divides the platform and the
/// task counts exactly like the figure drivers (scale 1 = paper size).
pub fn scenarios(scale: u32) -> Vec<Scenario> {
    let fs = FsConfig::franklin().scaled(scale);
    // The paced cells need a quiet baseline: pin the node service
    // discipline to fair-share so intra-node serialization (a real
    // Franklin effect, but a *different* signature) does not put its own
    // tail on the healthy ensemble and mask the injected fault.
    let mut calm = fs.clone();
    calm.discipline_weights = [0.0, 0.0, 1.0];
    // Cell 8 pins its platform as well as its job (see the cell
    // comment): its detection geometry is calibrated to scale 16.
    let mut calm_at_scale_16 = FsConfig::franklin().scaled(16);
    calm_at_scale_16.discipline_weights = [0.0, 0.0, 1.0];
    let tasks = (256 / scale).max(16);
    let n_osts = fs.n_osts;
    let tasks_per_node = fs.tasks_per_node;

    let mut cells = Vec::new();

    // 1. One slow OST: shoulder on reads, and the busy-time imbalance
    //    points at the degraded target. Runs on the calm platform: under
    //    exclusive/pairs service a rank stuck on the slow OST holds its
    //    node's token, so siblings' reads on *healthy* OSTs inherit the
    //    wait and the per-target differential blurs toward the
    //    attribution threshold (marginal across seeds on both engines).
    let slow_target = 1 % n_osts;
    cells.push(Scenario {
        fault: "slow-ost",
        workload: "ior-read",
        expect: "diagnose attributes slow-ost; imbalance names the target",
        expected: Expect::Single(FaultClass::SlowOst),
        plan: FaultPlan::new().with(Fault::SlowOst {
            ost: slow_target,
            slowdown: 8.0,
            ramp_per_s: 0.0,
        }),
        job: read_heavy(tasks, 2),
        fs: calm.clone(),
        detect: Box::new(move |res| {
            expect_class(res, FaultClass::SlowOst)?;
            // Resource-level cross-check: the utilization ledger must
            // point at the same target the stripe decomposition blamed.
            let imb = res.util.ost_imbalance();
            let busiest = res
                .util
                .ost_busy_s
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(usize::MAX);
            if busiest != slow_target {
                return Err(format!(
                    "imbalance points at OST {busiest}, fault was on {slow_target}"
                ));
            }
            Ok(format!(
                "slow-ost attributed; busiest OST = {busiest}, imbalance {imb:.1}x"
            ))
        }),
    });

    // 2. Every OST degrading on a ramp: per-phase read medians drift up —
    //    the paper's progressive-deterioration shape from a new cause.
    let ramp_plan = (0..n_osts).fold(FaultPlan::new(), |p, ost| {
        p.with(Fault::SlowOst {
            ost,
            slowdown: 1.5,
            ramp_per_s: 2.0,
        })
    });
    cells.push(Scenario {
        fault: "slow-ost-ramp",
        workload: "ior-read x4",
        expect: "progressive per-phase read deterioration",
        expected: Expect::Shape,
        plan: ramp_plan,
        job: read_heavy(tasks, 4),
        fs: fs.clone(),
        detect: Box::new(|res| {
            detect_progressive_deterioration(res.trace(), CallKind::Read, &Thresholds::default())
                .map(|f| f.to_string())
                .ok_or_else(|| "no progressive deterioration on reads".into())
        }),
    });

    // 3. Flaky fabric: a shoulder again, but the OST pool stays balanced —
    //    that contrast is what separates "a disk" from "the network".
    cells.push(Scenario {
        fault: "flaky-fabric",
        workload: "paced-read",
        expect: "diagnose attributes flaky-fabric; OST pool balanced",
        expected: Expect::Single(FaultClass::FlakyFabric),
        plan: FaultPlan::new().with(Fault::FlakyFabric {
            period_s: 0.25,
            duty: 0.1,
            slowdown: 40.0,
        }),
        job: paced_reads(tasks, 48, 0.1),
        fs: calm.clone(),
        detect: Box::new(|res| {
            expect_class(res, FaultClass::FlakyFabric)?;
            let imb = res.util.ost_imbalance();
            if imb >= 1.4 {
                return Err(format!(
                    "OST imbalance {imb:.2} — looks like a disk fault, not fabric"
                ));
            }
            Ok(format!(
                "flaky-fabric attributed; OSTs balanced ({imb:.2}x)"
            ))
        }),
    });

    // 4. MDS stall windows: the shoulder moves to the metadata class.
    cells.push(Scenario {
        fault: "mds-stall",
        workload: "meta-stream",
        expect: "diagnose attributes mds-stall on the metadata class",
        expected: Expect::Single(FaultClass::MdsStall),
        plan: FaultPlan::new().with(Fault::MdsStall {
            period_s: 3.1,
            stall_s: 0.7,
        }),
        job: meta_heavy(tasks, 40),
        fs: fs.clone(),
        detect: Box::new(|res| {
            expect_class(res, FaultClass::MdsStall)?;
            Ok("mds-stall attributed (meta shoulder, rank-spread tail)".into())
        }),
    });

    // 5. One straggling client node: the tail is *rank-correlated* —
    //    the node's tasks are slow, everyone else is fine.
    cells.push(Scenario {
        fault: "straggler-node",
        workload: "paced-read",
        expect: "diagnose names node-0 ranks as the straggler set",
        expected: Expect::Single(FaultClass::StragglerNode),
        plan: FaultPlan::new().with(Fault::StragglerNode {
            node: 0,
            slowdown: 32.0,
        }),
        job: paced_reads(tasks, 48, 0.1),
        fs: calm.clone(),
        detect: Box::new(move |res| {
            expect_class(res, FaultClass::StragglerNode)?;
            // The finding must name the faulted node's ranks, not merely
            // notice *some* concentration.
            let culprits = diagnose(res.trace())
                .into_iter()
                .find_map(|f| match f {
                    Finding::RankCorrelatedTail { ranks, .. } => Some(ranks),
                    _ => None,
                })
                .ok_or("attributed straggler-node without a rank-correlated finding")?;
            if culprits.is_empty() || !culprits.iter().all(|&r| r < tasks_per_node) {
                return Err(format!(
                    "culprit ranks {culprits:?} not confined to node 0 (ranks < {tasks_per_node})"
                ));
            }
            Ok(format!("straggler attributed to node-0 ranks {culprits:?}"))
        }),
    });

    // 6. Transient drops with retry: right-tail mass tracks the drop
    //    probability — loss surfaces as latency, never deadlock.
    let drop_prob = 0.08;
    cells.push(Scenario {
        fault: "drop-retry",
        workload: "paced-read",
        expect: "diagnose attributes drop-retry; tail mass tracks the rate",
        expected: Expect::Single(FaultClass::DropRetry),
        plan: FaultPlan::new().with(Fault::DropRetry {
            prob: drop_prob,
            timeout_s: 0.3,
            max_retries: 4,
        }),
        job: paced_reads(tasks, 48, 0.1),
        fs: calm.clone(),
        detect: Box::new(move |res| {
            expect_class(res, FaultClass::DropRetry)?;
            let tail_mass = diagnose(res.trace())
                .into_iter()
                .find_map(|f| match f {
                    Finding::RightShoulder {
                        kind: CallKind::Read,
                        tail_mass,
                        ..
                    } => Some(tail_mass),
                    _ => None,
                })
                .ok_or("attributed drop-retry without a read shoulder")?;
            if tail_mass < drop_prob / 3.0 || tail_mass > 4.0 * drop_prob {
                return Err(format!(
                    "tail mass {tail_mass:.3} does not track drop prob {drop_prob}"
                ));
            }
            Ok(format!(
                "drop-retry attributed; tail mass {tail_mass:.3} tracks drop prob {drop_prob}"
            ))
        }),
    });

    // 7. Compound, separated by *call class*: one slow OST puts the
    //    shoulder on reads while recurring MDS blackouts put a second
    //    shoulder on the metadata stream of the same job. Two findings,
    //    two attributions, one compound verdict.
    cells.push(Scenario {
        fault: "slow-ost+mds-stall",
        workload: "paced-mixed",
        expect: "compound verdict names both the disk and the MDS",
        expected: Expect::Pair(FaultClass::SlowOst, FaultClass::MdsStall),
        plan: FaultPlan::new()
            .with(Fault::SlowOst {
                ost: slow_target,
                slowdown: 8.0,
                ramp_per_s: 0.0,
            })
            .with(Fault::MdsStall {
                period_s: 1.9,
                stall_s: 0.4,
            }),
        job: paced_mixed(tasks, 48, 0.1),
        fs: calm.clone(),
        detect: Box::new(move |res| expect_pair(res, FaultClass::SlowOst, FaultClass::MdsStall)),
    });

    // 8. Compound, separated in *rank space*: node 0 straggles on
    //    everything (the dominant, rank-correlated tail) while a mild
    //    duty-cycled fabric fault slows everyone else's bursts. The
    //    rank-residual pass must find the periodic train hiding in the
    //    non-culprit ranks' tail.
    cells.push(Scenario {
        fault: "straggler+flaky",
        workload: "paced-read",
        expect: "rank residual finds the fabric under the straggler",
        expected: Expect::Pair(FaultClass::FlakyFabric, FaultClass::StragglerNode),
        plan: FaultPlan::new()
            .with(Fault::StragglerNode {
                node: 0,
                slowdown: 64.0,
            })
            .with(Fault::FlakyFabric {
                period_s: 0.25,
                duty: 0.2,
                slowdown: 10.0,
            }),
        // Pinned at 16 ranks AND the scale-16 platform regardless of
        // matrix scale: the rank residual needs node 0's culprit set to
        // stay a material fraction of the job (at 32+ ranks the
        // straggler's share dilutes below the rank-test threshold on
        // some seeds), and the fabric residual needs the duty-cycled
        // bursts to clear the tail cut (on the faster fabric of smaller
        // scale factors the 10x bursts stay under it).
        job: paced_reads(16, 48, 0.1),
        fs: calm_at_scale_16.clone(),
        detect: Box::new(move |res| {
            expect_pair(res, FaultClass::FlakyFabric, FaultClass::StragglerNode)
        }),
    });

    // 9. Compound, separated in *time*: the slow OST is only live in the
    //    first two seconds, the fabric fault only after — per-window
    //    evidence localizes each fault to the windows it owned, where a
    //    whole-run view would see neither test clear its threshold. The
    //    fabric ramps in so its severity sweeps a range of levels (a
    //    retry ladder it is not).
    cells.push(Scenario {
        fault: "slow-ost@early+flaky@late",
        workload: "paced-read",
        expect: "windowed evidence localizes each fault to its episode",
        expected: Expect::Pair(FaultClass::SlowOst, FaultClass::FlakyFabric),
        plan: FaultPlan::new()
            .with_scheduled(
                Fault::SlowOst {
                    ost: slow_target,
                    slowdown: 20.0,
                    ramp_per_s: 0.0,
                },
                FaultSchedule::window(0.0, 2.0),
            )
            .with_scheduled(
                Fault::FlakyFabric {
                    period_s: 0.2,
                    duty: 0.1,
                    slowdown: 18.0,
                },
                FaultSchedule::window(2.0, 64.0).with_ramp(1.2),
            ),
        // Pinned like cell 8: the per-window tests are calibrated to the
        // 16-rank job on the scale-16 platform; on the faster fabric of
        // smaller scale factors the late fabric episode hugs the tail
        // cut and drops below the residual threshold on some seeds.
        job: paced_reads(16, 48, 0.1),
        fs: calm_at_scale_16,
        detect: Box::new(move |res| expect_pair(res, FaultClass::SlowOst, FaultClass::FlakyFabric)),
    });

    cells
}

/// One simulation of `job` on `fs`, optionally under a fault plan.
pub fn run_once(
    job: &Job,
    fs: &FsConfig,
    seed: u64,
    label: &str,
    plan: Option<&FaultPlan>,
) -> RunReport {
    let mut cfg = RunConfig::new(fs.clone(), seed, label);
    if let Some(p) = plan {
        cfg = cfg.with_fault(p.clone());
    }
    Runner::new(job, cfg)
        .execute_one()
        .unwrap_or_else(|e| panic!("{label}: {e}"))
}

/// Like [`run_once`] but through the sharded parallel engine at an
/// explicit shard count. Used by the attribution corpus to prove the
/// shard count is invisible: reports and verdicts must be bit-identical
/// for any `shards`.
pub fn run_once_sharded(
    job: &Job,
    fs: &FsConfig,
    seed: u64,
    label: &str,
    plan: Option<&FaultPlan>,
    shards: u32,
) -> RunReport {
    let mut cfg = RunConfig::new(fs.clone(), seed, label);
    if let Some(p) = plan {
        cfg = cfg.with_fault(p.clone());
    }
    Runner::new(job, cfg)
        .shards(shards)
        .execute_one()
        .unwrap_or_else(|e| panic!("{label}@{shards} shards: {e}"))
}

/// Run one cell at one seed: baseline + faulted + repeat.
pub fn run_cell(s: &Scenario, seed: u64) -> CellOutcome {
    let label = format!("fault-{}", s.fault);
    let base = run_once(&s.job, &s.fs, seed, &label, None);
    let faulted = run_once(&s.job, &s.fs, seed, &label, Some(&s.plan));
    let repeat = run_once(&s.job, &s.fs, seed, &label, Some(&s.plan));
    let reproducible = faulted.trace().records == repeat.trace().records
        && faulted.events == repeat.events
        && faulted.end == repeat.end;
    CellOutcome {
        fault: s.fault,
        workload: s.workload,
        seed,
        signature: (s.detect)(&faulted),
        baseline_clean: (s.detect)(&base).is_err(),
        reproducible,
    }
}

/// Run the whole matrix: every scenario × every seed.
pub fn run_matrix(scale: u32, seeds: &[u64]) -> Vec<CellOutcome> {
    let mut out = Vec::new();
    for s in scenarios(scale) {
        for &seed in seeds {
            out.push(run_cell(&s, seed));
        }
    }
    out
}

/// Did every cell pass?
pub fn all_pass(cells: &[CellOutcome]) -> bool {
    cells.iter().all(CellOutcome::pass)
}

/// The no-fault inertness contract: a `None` plan and an empty plan
/// produce bit-identical traces (no RNG draws, no perturbation).
pub fn empty_plan_is_inert(scale: u32, seed: u64) -> bool {
    let fs = FsConfig::franklin().scaled(scale);
    let job = read_heavy((256 / scale).max(16), 1);
    let none = run_once(&job, &fs, seed, "inert", None);
    let empty = run_once(&job, &fs, seed, "inert", Some(&FaultPlan::new()));
    none.trace().records == empty.trace().records
        && none.events == empty.events
        && none.end == empty.end
}

/// Per-window attribution evidence for every compound (pair) cell: one
/// table per cell × seed showing, for each populated evidence window,
/// the tail-event count and which positional fingerprints fire there
/// (rank-correlated straggler, stripe-target slow OST, quantized
/// drop/retry levels), plus the whole-run verdict line. This is exactly
/// the per-window evidence `attribute_data_tail_windowed` consumes, so
/// when a compound verdict regresses the artifact shows *which windows*
/// stopped carrying which fingerprint without rerunning the matrix.
pub fn per_window_report(scale: u32, seeds: &[u64]) -> String {
    use std::fmt::Write;
    let th = Thresholds::default();
    let mut out = String::new();
    for s in scenarios(scale) {
        let Expect::Pair(a, b) = s.expected else {
            continue;
        };
        for &seed in seeds {
            let label = format!("fault-{}", s.fault);
            let res = run_once(&s.job, &s.fs, seed, &label, Some(&s.plan));
            writeln!(out, "== {} / {} (seed {seed}) ==", s.fault, s.workload).unwrap();
            writeln!(
                out,
                "injected: {} + {}   verdict: {}",
                a.name(),
                b.name(),
                verdict_of(&res).label()
            )
            .unwrap();
            for kind in [CallKind::Read, CallKind::Write] {
                let recs: Vec<_> = res
                    .trace()
                    .records
                    .iter()
                    .filter(|r| r.call == kind)
                    .collect();
                if recs.len() < th.min_samples {
                    continue;
                }
                let samples: Vec<f64> = recs.iter().map(|r| r.secs()).collect();
                let median = EmpiricalDist::new(&samples).median();
                let cut = th.tail_cut(median);
                let mut windows = WindowedProfile::new(
                    th.attr_window_s,
                    th.attr_max_windows,
                    th.stripe_bytes,
                    96,
                );
                for r in &recs {
                    windows.add(r.rank, r.offset, r.start_ns, r.secs());
                }
                writeln!(
                    out,
                    "{kind:?}: median {median:.4}s, tail cut {cut:.4}s, window {:.1}s",
                    windows.width_s()
                )
                .unwrap();
                writeln!(
                    out,
                    "  {:<8} {:<12} {:>6}  {:<22} {:<18} quantized",
                    "window", "span (s)", "tail", "straggler", "slow-ost"
                )
                .unwrap();
                for (i, slot) in windows.populated() {
                    let counts = slot.hist.counts();
                    let tail_ev: u64 = (0..slot.hist.bins())
                        .filter(|&j| slot.hist.bin_center(j) > cut)
                        .map(|j| counts[j])
                        .sum();
                    let straggler = slot
                        .profile
                        .rank_correlated(cut, &th)
                        .map_or("-".to_string(), |rt| {
                            format!("ranks {:?} @{:.0}%", rt.ranks, rt.tail_share * 100.0)
                        });
                    let slow_ost =
                        slot.profile
                            .target_correlated(cut, &th)
                            .map_or("-".to_string(), |tt| {
                                format!(
                                    "ost {}%{} @{:.0}%",
                                    tt.residue,
                                    tt.modulus,
                                    tt.tail_share * 100.0
                                )
                            });
                    let quantized = quantized_tail_levels(&slot.hist, cut, th.tail_min_events)
                        .map_or("-".to_string(), |lv| format!("{lv} levels"));
                    let w = windows.width_s();
                    writeln!(
                        out,
                        "  {:<8} {:<12} {:>6}  {:<22} {:<18} {}",
                        i,
                        format!("{:.1}-{:.1}", i as f64 * w, (i + 1) as f64 * w),
                        tail_ev,
                        straggler,
                        slow_ost,
                        quantized
                    )
                    .unwrap();
                }
            }
            writeln!(out).unwrap();
        }
    }
    out
}

/// Render the matrix as a fixed-width table.
pub fn render(cells: &[CellOutcome]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<15} {:<12} {:>5}  {:<5} {:<6} {:<7} detail",
        "fault", "workload", "seed", "sig", "base", "repro"
    )
    .unwrap();
    for c in cells {
        let (sig, detail) = match &c.signature {
            Ok(d) => ("ok", d.clone()),
            Err(e) => ("MISS", e.clone()),
        };
        writeln!(
            out,
            "{:<15} {:<12} {:>5}  {:<5} {:<6} {:<7} {}",
            c.fault,
            c.workload,
            c.seed,
            sig,
            if c.baseline_clean { "clean" } else { "DIRTY" },
            if c.reproducible { "exact" } else { "DRIFT" },
            detail
        )
        .unwrap();
    }
    out
}
