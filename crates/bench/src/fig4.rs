//! Figure 4: MADbench at 256 tasks on Franklin (buggy read-ahead,
//! ~2200 s) and Jaguar (~275 s): trace, aggregate read/write rate, and
//! log-log duration histograms. Franklin's slow reads appear as the
//! "broad right shoulder" of the read distribution.

use crate::util::dist_of;
use pio_core::diagnosis::{detect_right_shoulder, Finding, Thresholds};
use pio_core::empirical::EmpiricalDist;
use pio_core::loghist::LogHistogram;
use pio_core::rates::{read_rate_curve, write_rate_curve, RateCurve};
use pio_fs::FsConfig;
use pio_trace::{CallKind, Trace};
use pio_workloads::presets::fig4_madbench;

/// One platform's Figure 4 column.
pub struct Fig4Result {
    /// Platform label.
    pub platform: String,
    /// Total run time (s).
    pub runtime_s: f64,
    /// Read durations.
    pub read_dist: EmpiricalDist,
    /// Write durations.
    pub write_dist: EmpiricalDist,
    /// Log-log read histogram (panel c/f, red).
    pub read_hist: LogHistogram,
    /// Log-log write histogram (panel c/f, blue).
    pub write_hist: LogHistogram,
    /// Aggregate read rate (panel b/e).
    pub read_rate: RateCurve,
    /// Aggregate write rate (panel b/e).
    pub write_rate: RateCurve,
    /// Right-shoulder finding on the reads, if detected.
    pub shoulder: Option<Finding>,
    /// Reads that executed on the degraded (bug) path.
    pub degraded_reads: u64,
    /// Full trace (diagram, phase analysis).
    pub trace: Trace,
}

/// Run MADbench on `platform` at `scale`.
pub fn run(platform: FsConfig, scale: u32, seed: u64) -> Fig4Result {
    run_with_fault(platform, scale, seed, None)
}

/// [`run`] under an optional fault plan.
pub fn run_with_fault(
    platform: FsConfig,
    scale: u32,
    seed: u64,
    fault: Option<pio_fault::FaultPlan>,
) -> Fig4Result {
    let exp = fig4_madbench(platform, seed, scale);
    let mut runner = pio_mpi::Runner::new(&exp.job, exp.run.clone());
    if let Some(plan) = fault {
        runner = runner.fault_plan(plan);
    }
    let res = runner.execute_one().expect("fig4 run");
    let read_dist = dist_of(res.trace(), CallKind::Read).expect("reads");
    let write_dist = dist_of(res.trace(), CallKind::Write).expect("writes");
    let read_hist = LogHistogram::from_samples(read_dist.samples(), 60);
    let write_hist = LogHistogram::from_samples(write_dist.samples(), 60);
    let dt = (res.wall_secs() / 200.0).max(1e-3);
    Fig4Result {
        platform: res.trace().meta.platform.clone(),
        runtime_s: res.wall_secs(),
        read_rate: read_rate_curve(res.trace(), dt),
        write_rate: write_rate_curve(res.trace(), dt),
        shoulder: detect_right_shoulder(res.trace(), CallKind::Read, &Thresholds::default()),
        degraded_reads: res.stats.degraded_reads,
        read_dist,
        write_dist,
        read_hist,
        write_hist,
        trace: res.into_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn franklin_vs_jaguar_shapes() {
        let franklin = run(FsConfig::franklin(), 16, 5);
        let jaguar = run(FsConfig::jaguar(), 16, 5);
        // Franklin hits the bug; Jaguar does not.
        assert!(franklin.degraded_reads > 0, "Franklin must degrade");
        assert_eq!(jaguar.degraded_reads, 0, "Jaguar must not");
        // Franklin is much slower overall.
        assert!(
            franklin.runtime_s > 1.5 * jaguar.runtime_s,
            "franklin {} vs jaguar {}",
            franklin.runtime_s,
            jaguar.runtime_s
        );
        // The shoulder detector fires on Franklin's reads only.
        assert!(franklin.shoulder.is_some(), "shoulder expected");
        // Write distributions are comparatively similar across platforms
        // (the paper: "the two write distributions display similar
        // performance characteristics").
        let w_ratio = franklin.write_dist.median() / jaguar.write_dist.median();
        let r_ratio = franklin.read_dist.quantile(0.95) / jaguar.read_dist.quantile(0.95);
        assert!(
            r_ratio > 2.0 * w_ratio,
            "reads must differ far more than writes: r {r_ratio} w {w_ratio}"
        );
    }
}
