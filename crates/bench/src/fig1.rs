//! Figure 1: IOR, 1024 tasks × 512 MB × 5 barriered phases on Franklin.
//!
//! Panels: (a) the trace diagram with its five synchronous bands, (b) the
//! aggregate write rate with a high cache-fill plateau then a sustained
//! plateau and tail, (c) the completion-time histogram with modes at the
//! fair-share time T and its harmonics T/2, T/4 — reproduced on a second
//! "file system" (same hardware, different run) to show the distribution
//! is stable while the trace is not.

use crate::util::dist_of;
use pio_core::distance::ks_statistic;
use pio_core::empirical::EmpiricalDist;
use pio_core::modes::{find_modes, harmonic_structure, HarmonicStructure, Mode};
use pio_core::rates::{write_rate_curve, RateCurve};
use pio_trace::{CallKind, Trace};
use pio_workloads::presets::fig1_ior;

/// Everything Figure 1 shows.
pub struct Fig1Result {
    /// Run time of the scratch run (s).
    pub runtime_s: f64,
    /// Aggregate write-rate curve (panel b).
    pub rate_curve: RateCurve,
    /// Per-call write durations of the scratch run (panel c).
    pub write_dist: EmpiricalDist,
    /// Same for the scratch2 run.
    pub write_dist2: EmpiricalDist,
    /// Detected histogram modes.
    pub modes: Vec<Mode>,
    /// Harmonic ladder among the modes, if recognized.
    pub harmonics: Option<HarmonicStructure>,
    /// KS distance between the two runs' distributions (reproducibility).
    pub ks_between_runs: f64,
    /// Fair-share completion time T = block / (fabric / tasks), seconds.
    pub fair_share_time_s: f64,
    /// The scratch trace (for the diagram).
    pub trace: Trace,
}

/// Run the Figure 1 experiment at `scale` (1 = the paper's size).
pub fn run(scale: u32, seed: u64) -> Fig1Result {
    run_with_fault(scale, seed, None)
}

/// [`run`] under an optional fault plan (injected into both the scratch
/// and scratch2 runs, so the reproducibility comparison stays
/// like-for-like).
pub fn run_with_fault(scale: u32, seed: u64, fault: Option<pio_fault::FaultPlan>) -> Fig1Result {
    let exp = fig1_ior(seed, false, scale);
    let exp2 = fig1_ior(seed + 1, true, scale);
    let tasks = exp.job.ranks();
    let block = exp.job.total_bytes_written() as f64 / tasks as f64 / 5.0;
    let fair = block / (exp.run.fs.fabric_bw / tasks as f64);

    let mut runner = pio_mpi::Runner::new(&exp.job, exp.run.clone());
    let mut runner2 = pio_mpi::Runner::new(&exp2.job, exp2.run.clone());
    if let Some(plan) = fault {
        runner = runner.fault_plan(plan.clone());
        runner2 = runner2.fault_plan(plan);
    }
    let res = runner.execute_one().expect("fig1 run");
    let res2 = runner2.execute_one().expect("fig1 scratch2 run");

    let write_dist = dist_of(res.trace(), CallKind::Write).expect("writes");
    let write_dist2 = dist_of(res2.trace(), CallKind::Write).expect("writes");
    let modes = find_modes(&write_dist, 512, 0.08);
    let harmonics = harmonic_structure(&modes, 0.2);
    let ks = ks_statistic(&write_dist, &write_dist2);
    let dt = (res.wall_secs() / 200.0).max(1e-3);

    Fig1Result {
        runtime_s: res.wall_secs(),
        rate_curve: write_rate_curve(res.trace(), dt),
        write_dist,
        write_dist2,
        modes,
        harmonics,
        ks_between_runs: ks,
        fair_share_time_s: fair,
        trace: res.into_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_fig1_shows_the_papers_structure() {
        // 1/16 scale: 64 tasks × 32 MB × 5 phases.
        let r = run(16, 42);
        assert!(r.runtime_s > 0.0);
        // Five write phases → 5 write calls per task.
        assert_eq!(r.write_dist.n() as u32, 64 * 5);
        // The distributions of the two "file systems" are close while the
        // traces are not identical (the paper's reproducibility claim).
        assert!(
            r.ks_between_runs < 0.25,
            "distribution should reproduce: KS {}",
            r.ks_between_runs
        );
        // Multi-modal completion times (harmonic node-discipline modes).
        assert!(
            r.modes.len() >= 2,
            "expected harmonic modes, got {:?}",
            r.modes
        );
        // The slowest mode sits near the fair-share time.
        let fundamental = r.modes.last().unwrap().location;
        assert!(
            fundamental > 0.5 * r.fair_share_time_s && fundamental < 2.5 * r.fair_share_time_s,
            "fundamental {fundamental} vs fair share {}",
            r.fair_share_time_s
        );
    }
}
