//! Ablation studies over the design choices DESIGN.md calls out: each
//! table toggles one mechanism of the simulator and reports the effect
//! on the simulated outcomes, isolating what produces which phenomenon.
//!
//! Usage: `ablations [--scale N]` (default 16).

use pio_bench::util::scale_from_args;
use pio_core::empirical::EmpiricalDist;
use pio_core::modes::find_modes;
use pio_fs::FsConfig;
use pio_mpi::program::Job;
use pio_mpi::{RunConfig, RunReport, Runner};
use pio_trace::{CallKind, OnlineProfile};
use pio_workloads::gcrm::{GcrmConfig, GcrmStage};
use pio_workloads::{IorConfig, MadbenchConfig};

fn run(job: &Job, cfg: RunConfig) -> RunReport {
    Runner::new(job, cfg).execute_one().unwrap()
}

fn main() {
    let scale = scale_from_args(16);
    discipline_ablation(scale);
    readahead_ablation(scale * 2);
    alignment_ablation(scale * 4);
    aggregator_sweep(scale * 4);
    shared_vs_file_per_process(scale);
    profile_vs_trace(scale);
}

/// IOR shared-file vs file-per-process: the classic layout comparison.
fn shared_vs_file_per_process(scale: u32) {
    println!("\n== ablation: shared file vs file-per-process (IOR) ==");
    println!(
        "{:<26} {:>10} {:>11} {:>11} {:>10}",
        "layout", "runtime(s)", "rate(MB/s)", "meta ops", "conflicts"
    );
    for (label, fpp) in [
        ("shared file (paper)", false),
        ("file per process (-F)", true),
    ] {
        let cfg = IorConfig {
            repetitions: 2,
            file_per_process: fpp,
            ..IorConfig::paper_fig1().scaled(scale)
        };
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::franklin().scaled(scale), 17, "abl-fpp"),
        );
        let meta_ops = res
            .trace()
            .records
            .iter()
            .filter(|r| matches!(r.call, CallKind::MetaRead | CallKind::MetaWrite))
            .count()
            + res.trace().of_kind(CallKind::Open).count()
            + res.trace().of_kind(CallKind::Close).count();
        println!(
            "{label:<26} {:>10.0} {:>11.0} {:>11} {:>10}",
            res.wall_secs(),
            res.stats.bytes_written as f64 / 1e6 / res.wall_secs(),
            meta_ops,
            res.lock_stats.contended
        );
    }
    println!("-> aligned exclusive offsets make the shared file conflict-free,");
    println!("   so the layouts perform alike here; unaligned shared records");
    println!("   (see the alignment ablation) are where the shared file loses.");
}

/// Which node service-discipline mix produces the harmonic modes?
fn discipline_ablation(scale: u32) {
    println!("\n== ablation: node service discipline (IOR, Figure 1c modes) ==");
    println!(
        "{:<28} {:>8} {:>8} {:>10} {:>26}",
        "discipline weights [x,p,f]", "cv", "iqr(s)", "runtime(s)", "mode locations (s)"
    );
    let cfg = IorConfig {
        repetitions: 3,
        ..IorConfig::paper_fig1().scaled(scale)
    };
    for (label, weights) in [
        ("pure fair [0,0,1]", [0.0, 0.0, 1.0]),
        ("pure exclusive [1,0,0]", [1.0, 0.0, 0.0]),
        ("paper mix [.3,.3,.4]", [0.30, 0.30, 0.40]),
    ] {
        let mut fs = FsConfig::franklin().scaled(scale);
        fs.discipline_weights = weights;
        let res = run(&cfg.job(), RunConfig::new(fs, 7, "abl-disc"));
        // Skip the cache-absorption fast mode (< 20% of the median) so the
        // drain-bound mode structure is what we compare.
        let all = res.trace().durations_of(CallKind::Write);
        let med = EmpiricalDist::new(&all).median();
        let drained: Vec<f64> = all.iter().cloned().filter(|&d| d > 0.2 * med).collect();
        let d = EmpiricalDist::new(&drained);
        let modes = find_modes(&d, 512, 0.15);
        let locs: Vec<String> = modes.iter().map(|m| format!("{:.0}", m.location)).collect();
        println!(
            "{label:<28} {:>8.2} {:>8.1} {:>10.0} {:>26}",
            d.cv().unwrap_or(0.0),
            d.iqr(),
            res.wall_secs(),
            locs.join(",")
        );
    }
    println!("-> exclusive/paired service spreads completions over T/4..T (wide");
    println!("   iqr, multiple modes); pure fair collapses them to one peak at T.");
}

/// Strided detection on/off × memory pressure: the MADbench bug matrix.
fn readahead_ablation(scale: u32) {
    println!("\n== ablation: read-ahead strided detection x memory pressure (MADbench) ==");
    println!(
        "{:<40} {:>10} {:>10} {:>12}",
        "configuration", "runtime(s)", "degraded", "worst read(s)"
    );
    let cfg = MadbenchConfig::paper().scaled(scale);
    for (label, detect, cache_mult) in [
        ("bug on, normal cache (Franklin)", true, 1.0f64),
        ("bug on, huge cache (no pressure)", true, 64.0),
        ("bug off, normal cache (patched)", false, 1.0),
    ] {
        let mut fs = FsConfig::franklin().scaled(scale);
        fs.readahead.strided_detection = detect;
        fs.cache_bytes = (fs.cache_bytes as f64 * cache_mult) as u64;
        let res = run(&cfg.job(), RunConfig::new(fs, 5, "abl-ra"));
        let worst = res
            .trace()
            .durations_of(CallKind::Read)
            .into_iter()
            .fold(0.0f64, f64::max);
        println!(
            "{label:<40} {:>10.0} {:>10} {:>12.1}",
            res.wall_secs(),
            res.stats.degraded_reads,
            worst
        );
    }
    println!("-> the catastrophe needs BOTH the strided window bug AND");
    println!("   memory pressure — exactly the paper's interaction.");
}

/// Alignment on/off at several stripe sizes: the lock-conflict cost.
fn alignment_ablation(scale: u32) {
    println!("\n== ablation: record alignment (GCRM, Figure 6 g-i) ==");
    println!(
        "{:<34} {:>10} {:>11} {:>10}",
        "configuration", "runtime(s)", "conflicts", "sync-wr"
    );
    for (label, stage) in [
        (
            "unaligned (collective, 1.6MB)",
            GcrmStage::CollectiveBuffering {
                aggregators: 80 / scale.clamp(1, 40),
            },
        ),
        (
            "aligned to 1 MiB (padded 2MiB)",
            GcrmStage::Aligned {
                aggregators: 80 / scale.clamp(1, 40),
                alignment: 1 << 20,
            },
        ),
    ] {
        let mut cfg = GcrmConfig::paper_baseline().scaled(scale);
        cfg.stage = stage;
        cfg.h5.meta_writes_per_rank = 0.0; // isolate the data path
        let res = run(
            &cfg.job(),
            RunConfig::new(FsConfig::franklin().scaled(scale), 11, "abl-align"),
        );
        println!(
            "{label:<34} {:>10.0} {:>11} {:>10}",
            res.wall_secs(),
            res.lock_stats.contended,
            res.stats.sync_writes
        );
    }
    println!("-> alignment removes shared boundary stripes: no conflicts,");
    println!("   no forced-synchronous writes, cached write-back returns.");
}

/// Aggregator-count sweep: how few writers saturate the I/O subsystem?
fn aggregator_sweep(scale: u32) {
    println!("\n== ablation: collective-buffering aggregator count (GCRM) ==");
    println!(
        "{:>12} {:>12} {:>14}",
        "aggregators", "runtime(s)", "agg MB/s"
    );
    let mut base = GcrmConfig::paper_baseline().scaled(scale);
    base.h5.meta_writes_per_rank = 0.0; // isolate the data path
    let total_mb = base.total_payload() as f64 / 1e6;
    // Over-provision the fabric relative to the writer pool (the paper's
    // regime: 10,240 tasks but the servers saturate at 80 writers) so the
    // knee is visible: platform shrunk 8x less than the workload.
    let platform = FsConfig::franklin().scaled((scale / 8).max(1));
    for aggs in [1u32, 2, 5, 10, 20, base.tasks / 2] {
        let mut cfg = base.clone();
        cfg.stage = GcrmStage::Aligned {
            aggregators: aggs,
            alignment: 1 << 20,
        };
        let res = run(&cfg.job(), RunConfig::new(platform.clone(), 13, "abl-agg"));
        let actual = cfg.aggregation().unwrap().aggregators;
        println!(
            "{:>12} {:>12.0} {:>14.0}",
            actual,
            res.wall_secs(),
            total_mb / res.wall_secs()
        );
    }
    println!("-> the knee: a handful of writers already saturates the servers; the paper");
    println!("   found 80 of 10,240 tasks enough on Franklin.");
}

/// Trace mode vs online-profile mode: the future-work scalability claim.
fn profile_vs_trace(scale: u32) {
    println!("\n== ablation: full tracing vs online profiling (paper §VI) ==");
    let cfg = IorConfig {
        repetitions: 3,
        ..IorConfig::paper_fig1().scaled(scale)
    };
    let res = run(
        &cfg.job(),
        RunConfig::new(FsConfig::franklin().scaled(scale), 9, "abl-prof"),
    );
    let mut buf = Vec::new();
    pio_trace::io::write_jsonl(res.trace(), &mut buf).unwrap();
    let mut profile = OnlineProfile::default();
    profile.record_all(&res.trace().records);
    let profile_bytes = serde_json::to_vec(&profile).unwrap().len();
    println!(
        "full trace: {} records, {} KB serialized",
        res.trace().records.len(),
        buf.len() / 1024
    );
    println!(
        "online profile: fixed {} KB regardless of run length ({}x smaller)",
        profile_bytes / 1024,
        buf.len() / profile_bytes.max(1)
    );
    let d = EmpiricalDist::new(&res.trace().durations_of(CallKind::Write));
    println!(
        "write median: exact {:.2}s vs profile {:.2}s — the distribution,",
        d.median(),
        profile.quantile(CallKind::Write, 0.5).unwrap_or(0.0)
    );
    println!("   which is all the ensemble method needs, survives the compression.");
}
