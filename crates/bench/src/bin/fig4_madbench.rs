//! Regenerate Figure 4: MADbench at 256 tasks on Franklin (buggy
//! read-ahead) and Jaguar — traces, aggregate read/write rates, and
//! log-log duration histograms with Franklin's "broad right shoulder".
//!
//! Usage: `fig4_madbench [--scale N] [--fault <plan>] [--fault-schedule <spec>]`.

use pio_bench::fig4;
use pio_bench::util::{
    fault_or_schedule_from_args, print_rows, results_dir, scale_from_args, shards_from_args, Row,
};
use pio_fs::FsConfig;
use pio_viz::ascii;
use pio_viz::csv as vcsv;

fn main() {
    let scale = scale_from_args(1);
    pio_mpi::set_default_shards(shards_from_args());
    let fault = fault_or_schedule_from_args();
    match &fault {
        Some(_) => {
            println!("# Figure 4 — MADbench on Franklin vs Jaguar (scale 1/{scale}, faulted)")
        }
        None => println!("# Figure 4 — MADbench on Franklin vs Jaguar (scale 1/{scale})"),
    }
    let franklin = fig4::run_with_fault(FsConfig::franklin(), scale, 5, fault.clone());
    let jaguar = fig4::run_with_fault(FsConfig::jaguar(), scale, 5, fault);

    for r in [&franklin, &jaguar] {
        println!("\n## {} — run time {:.0} s", r.platform, r.runtime_s);
        println!("{}", ascii::trace_diagram(&r.trace, 16, 100));
        println!(
            "{}",
            ascii::rate_curve_text(&r.read_rate, 6, "aggregate read rate")
        );
        println!(
            "{}",
            ascii::rate_curve_text(&r.write_rate, 6, "aggregate write rate")
        );
        println!("log-log read histogram (center s, count):");
        for (c, n) in r.read_hist.series() {
            println!("  {c:>10.3}  {n}");
        }
        println!(
            "read p50 {:.1}s  p99 {:.1}s  max {:.1}s   write p50 {:.1}s p99 {:.1}s",
            r.read_dist.median(),
            r.read_dist.quantile(0.99),
            r.read_dist.max(),
            r.write_dist.median(),
            r.write_dist.quantile(0.99)
        );
        match &r.shoulder {
            Some(f) => println!("diagnosis: {f}"),
            None => println!("diagnosis: reads look healthy"),
        }
        println!("degraded reads (bug path): {}", r.degraded_reads);
    }

    let rows = vec![
        Row::new("Franklin run time", 2200.0, franklin.runtime_s, "s"),
        Row::new("Jaguar run time", 275.0, jaguar.runtime_s, "s"),
        Row::new(
            "Franklin/Jaguar ratio",
            2200.0 / 275.0,
            franklin.runtime_s / jaguar.runtime_s,
            "x",
        ),
        Row::new(
            "Franklin slowest read (30-500 s band)",
            500.0,
            franklin.read_dist.max(),
            "s",
        ),
        Row::new("Jaguar slowest read", 30.0, jaguar.read_dist.max(), "s"),
    ];
    print_rows("Figure 4: paper vs measured", &rows);

    let dir = results_dir();
    for r in [&franklin, &jaguar] {
        let base = format!("fig4_{}", r.platform.replace(['-', '/'], "_"));
        vcsv::save(&dir.join(format!("{base}_read_hist.csv")), |w| {
            vcsv::log_histogram_csv(&r.read_hist, w)
        })
        .expect("csv");
        vcsv::save(&dir.join(format!("{base}_write_hist.csv")), |w| {
            vcsv::log_histogram_csv(&r.write_hist, w)
        })
        .expect("csv");
        vcsv::save(&dir.join(format!("{base}_read_rate.csv")), |w| {
            vcsv::rate_curve_csv(&r.read_rate, w)
        })
        .expect("csv");
    }
    println!("\nCSV series written to {}", dir.display());
}
