//! Regenerate Figure 1: IOR 512 MB × 1024 tasks × 5 phases on Franklin.
//!
//! Prints the trace diagram (panel a), the aggregate write-rate profile
//! (panel b), the completion-time histogram with its harmonic modes
//! (panel c), and the scratch-vs-scratch2 reproducibility comparison;
//! exports the series as CSV under `results/`.
//!
//! Usage: `fig1_ior [--scale N] [--fault <plan>] [--fault-schedule <spec>]` (scale 1 = the
//! paper's size; `--fault` re-runs the experiment under a named fault
//! plan, e.g. `slow-ost`).

use pio_bench::fig1;
use pio_bench::util::{
    fault_or_schedule_from_args, print_rows, results_dir, scale_from_args, shards_from_args, Row,
};
use pio_core::hist::Histogram;
use pio_viz::ascii;
use pio_viz::csv as vcsv;

fn main() {
    let scale = scale_from_args(1);
    pio_mpi::set_default_shards(shards_from_args());
    let fault = fault_or_schedule_from_args();
    match &fault {
        Some(_) => println!("# Figure 1 — IOR ensembles (scale 1/{scale}, faulted)"),
        None => println!("# Figure 1 — IOR ensembles (scale 1/{scale})"),
    }
    let r = fig1::run_with_fault(scale, 1, fault);

    // Panel (a): trace diagram.
    println!("\n{}", ascii::trace_diagram(&r.trace, 24, 100));

    // Panel (b): aggregate write rate.
    println!(
        "{}",
        ascii::rate_curve_text(&r.rate_curve, 10, "aggregate write rate")
    );

    // Panel (c): completion-time histogram + modes.
    let hist = Histogram::from_samples(r.write_dist.samples(), 48);
    println!(
        "{}",
        ascii::histogram_text(&hist, 50, "write() completion times")
    );
    println!("detected modes:");
    for m in &r.modes {
        println!("  {:.2} s  (mass {:.0}%)", m.location, m.mass * 100.0);
    }
    match &r.harmonics {
        Some(h) => println!(
            "harmonic structure: T = {:.1}s with orders {:?} — intra-node \
             serialization fingerprint (paper: R, R/2, R/4)",
            h.fundamental, h.orders
        ),
        None => println!("no harmonic structure recognized"),
    }

    let scale_f = scale as f64;
    let rows = vec![
        Row::new(
            "aggregate write rate (x scale)",
            11_610.0,
            r.rate_curve.average() * scale_f,
            "MB/s",
        ),
        Row::new(
            "phase time (~45 s per 512 MB phase)",
            45.0,
            r.runtime_s / 5.0,
            "s",
        ),
        Row::new(
            "fair-share time T = 512MB/(BW/N)",
            32.0,
            r.fair_share_time_s,
            "s",
        ),
        Row::new(
            "scratch vs scratch2 KS distance",
            0.0,
            r.ks_between_runs,
            "",
        ),
    ];
    print_rows("Figure 1: paper vs measured", &rows);
    println!(
        "\nreproducibility: KS = {:.3} between the two file systems' \
         distributions ({} vs {} events) — 'almost identical' as the paper \
         reports, while the traces differ event-by-event.",
        r.ks_between_runs,
        r.write_dist.n(),
        r.write_dist2.n()
    );

    // CSV exports.
    let dir = results_dir();
    vcsv::save(&dir.join("fig1_rate_curve.csv"), |w| {
        vcsv::rate_curve_csv(&r.rate_curve, w)
    })
    .expect("write fig1_rate_curve.csv");
    vcsv::save(&dir.join("fig1_write_hist.csv"), |w| {
        vcsv::histogram_csv(&hist, w)
    })
    .expect("write fig1_write_hist.csv");
    let hist2 = Histogram::from_samples(r.write_dist2.samples(), 48);
    vcsv::save(&dir.join("fig1_write_hist_scratch2.csv"), |w| {
        vcsv::histogram_csv(&hist2, w)
    })
    .expect("write fig1_write_hist_scratch2.csv");
    println!("CSV series written to {}", dir.display());
}
