//! Regenerate Figure 2 and the §III-A rate table: IOR with the 512 MB
//! block split into k = 1, 2, 4, 8 write() calls.
//!
//! Prints the per-k distribution of per-task totals t_k (narrowing with
//! k — Law of Large Numbers), the measured rate table against the
//! paper's 11,610 → 13,486 MB/s, and the convolution-based prediction
//! from the k=1 distribution.
//!
//! Usage: `fig2_lln [--scale N] [--fault <plan>] [--fault-schedule <spec>]`.

use pio_bench::fig2;
use pio_bench::util::{
    fault_or_schedule_from_args, print_rows, results_dir, scale_from_args, shards_from_args, Row,
};
use pio_core::hist::Histogram;
use pio_viz::ascii;
use pio_viz::csv as vcsv;

fn main() {
    let scale = scale_from_args(1);
    pio_mpi::set_default_shards(shards_from_args());
    let fault = fault_or_schedule_from_args();
    match &fault {
        Some(_) => println!("# Figure 2 — Law of Large Numbers (scale 1/{scale}, faulted)"),
        None => println!("# Figure 2 — Law of Large Numbers (scale 1/{scale})"),
    }
    let rows = fig2::run_with_fault(scale, 21, fault);

    for r in &rows {
        let hist = Histogram::from_samples(r.tk_dist.samples(), 32);
        println!(
            "\n{}",
            ascii::histogram_text(
                &hist,
                40,
                &format!("t_k distribution, k = {} ({} MB calls)", r.k, r.xfer_mb)
            )
        );
        println!(
            "  cv = {:.3}   (1/sqrt(k) prediction from k=1: {:.3})",
            r.cv_tk,
            rows[0].cv_tk / (r.k as f64).sqrt()
        );
    }

    let scale_f = scale as f64;
    let table: Vec<Row> = rows
        .iter()
        .map(|r| {
            Row::new(
                format!("IOR rate at k={} ({} MB transfers)", r.k, r.xfer_mb),
                r.paper_rate,
                r.rate_mb_s * scale_f,
                "MB/s",
            )
        })
        .collect();
    print_rows("Figure 2 / §III-A table: paper vs measured", &table);
    println!(
        "\nspeedup k=8 over k=1: measured {:.1}% (paper: {:.1}%)",
        (rows[3].speedup - 1.0) * 100.0,
        (13_486.0 / 11_610.0 - 1.0) * 100.0
    );

    let pred = fig2::predict_from_k1(&rows);
    println!("\nconvolution prediction from the k=1 ensemble alone:");
    for (k, rate) in &pred {
        println!("  k={k}: predicted {:.0} MB/s (x scale)", rate * scale_f);
    }

    let dir = results_dir();
    let series: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.k as f64, r.rate_mb_s * scale_f))
        .collect();
    vcsv::save(&dir.join("fig2_rate_vs_k.csv"), |w| {
        vcsv::xy_csv("k,rate_mb_s", &series, w)
    })
    .expect("write fig2_rate_vs_k.csv");
    for r in &rows {
        let hist = Histogram::from_samples(r.tk_dist.samples(), 32);
        vcsv::save(&dir.join(format!("fig2_tk_hist_k{}.csv", r.k)), |w| {
            vcsv::histogram_csv(&hist, w)
        })
        .expect("write fig2 histogram csv");
    }
    println!("CSV series written to {}", dir.display());
}
