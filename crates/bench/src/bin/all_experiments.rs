//! Run every experiment of the paper back-to-back and print one
//! consolidated paper-vs-measured table — the machine-readable summary
//! behind EXPERIMENTS.md.
//!
//! Usage: `all_experiments [--scale N]` (default full scale).

use pio_bench::util::{print_rows, scale_from_args, Row};
use pio_bench::{fig1, fig2, fig4, fig5, fig6};
use pio_fs::FsConfig;

fn main() {
    let scale = scale_from_args(1);
    let scale_f = scale as f64;
    println!("# events-to-ensembles: full experiment sweep (scale 1/{scale})");
    let t0 = std::time::Instant::now();
    let mut rows: Vec<Row> = Vec::new();

    // Figure 1.
    let r1 = fig1::run(scale, 1);
    rows.push(Row::new(
        "fig1 IOR aggregate rate",
        11_610.0,
        r1.rate_curve.average() * scale_f,
        "MB/s",
    ));
    rows.push(Row::new(
        "fig1 modes detected (3 peaks)",
        3.0,
        r1.modes.len() as f64,
        "",
    ));
    rows.push(Row::new(
        "fig1 run-to-run KS (≈0 = reproducible)",
        0.05,
        r1.ks_between_runs,
        "",
    ));
    eprintln!("[{:>6.1}s] fig1 done", t0.elapsed().as_secs_f64());

    // Figure 2.
    let r2 = fig2::run(scale, 21);
    for row in &r2 {
        rows.push(Row::new(
            format!("fig2 IOR rate k={}", row.k),
            row.paper_rate,
            row.rate_mb_s * scale_f,
            "MB/s",
        ));
    }
    rows.push(Row::new(
        "fig2 k=8 speedup",
        13_486.0 / 11_610.0,
        r2[3].speedup,
        "x",
    ));
    eprintln!("[{:>6.1}s] fig2 done", t0.elapsed().as_secs_f64());

    // Figures 4 & 5.
    let r5 = fig5::run(scale, 5);
    let jaguar = fig4::run(FsConfig::jaguar(), scale, 5);
    rows.push(Row::new(
        "fig4 MADbench Franklin (buggy)",
        2200.0,
        r5.before.runtime_s,
        "s",
    ));
    rows.push(Row::new(
        "fig4 MADbench Jaguar",
        275.0,
        jaguar.runtime_s,
        "s",
    ));
    rows.push(Row::new(
        "fig5 MADbench Franklin (patched)",
        520.0,
        r5.after.runtime_s,
        "s",
    ));
    rows.push(Row::new("fig5 patch speedup", 4.2, r5.speedup, "x"));
    rows.push(Row::new(
        "fig4 Franklin slowest read",
        500.0,
        r5.before.read_dist.max(),
        "s",
    ));
    eprintln!("[{:>6.1}s] fig4/fig5 done", t0.elapsed().as_secs_f64());

    // Figure 6.
    let r6 = fig6::run_all(scale, 11);
    for r in &r6 {
        rows.push(Row::new(
            format!("fig6 GCRM stage {} ({})", r.stage, r.label),
            fig6::PAPER_RUNTIMES[r.stage as usize],
            r.runtime_s,
            "s",
        ));
    }
    rows.push(Row::new(
        "fig6 overall improvement",
        310.0 / 75.0,
        r6[0].runtime_s / r6[3].runtime_s.max(1e-9),
        "x",
    ));
    eprintln!("[{:>6.1}s] fig6 done", t0.elapsed().as_secs_f64());

    print_rows("All experiments: paper vs measured", &rows);
    println!(
        "\ntotal sweep time: {:.1}s real",
        t0.elapsed().as_secs_f64()
    );
}
