//! Offline trace analysis — the tool a user points at a saved IPM-I/O
//! trace (JSONL, binary ptb, or columnar ptb2, as written by
//! `pio_trace::io` or any conforming producer) to get the paper's full
//! ensemble treatment without re-running anything. The input format is
//! sniffed from the file's bytes via the `TraceCodec` registry;
//! `--format jsonl|ptb|ptb2` forces it.
//!
//! Usage: `analyze <trace> [--stream] [--format jsonl|ptb|ptb2] [--diagram] [--csv DIR]`
//!
//! Prints the IPM summary, per-call-class ensemble statistics and modes,
//! per-phase breakdown, and the bottleneck diagnosis; optionally the
//! ASCII trace diagram and CSV exports of the histograms.
//!
//! With `--stream`, the trace is never loaded into memory: records are
//! streamed one line at a time through the `pio-ingest` pipeline and
//! online diagnoser, and the report is rendered from the mergeable
//! snapshot — constant memory regardless of trace size.

use pio_bench::util::format_from_args;
use pio_core::empirical::EmpiricalDist;
use pio_core::loghist::LogHistogram;
use pio_core::rates::write_rate_curve;
use pio_core::report;
use pio_ingest::{IngestConfig, IngestPipeline, StreamDiagnoser};
use pio_trace::codec::codec_for;
use pio_trace::phase::phase_summaries;
use pio_trace::{io as trace_io, CallKind, Tee, TraceFormat};
use pio_viz::ascii;
use pio_viz::csv as vcsv;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: analyze <trace> [--stream] [--format jsonl|ptb|ptb2] [--diagram] [--csv DIR]"
        );
        std::process::exit(2);
    };
    // Exits with status 2 on a malformed --format before any I/O.
    let forced_format = format_from_args();
    if args.iter().any(|a| a == "--stream") {
        stream_analyze(path, forced_format);
        return;
    }
    let want_diagram = args.iter().any(|a| a == "--diagram");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let loaded = match forced_format {
        // A forced format bypasses sniffing (e.g. a trace behind a
        // pipe-unfriendly name); mismatches fail with a parse error.
        Some(format) => std::fs::File::open(path)
            .and_then(|f| codec_for(format).read(&mut std::io::BufReader::new(f))),
        None => trace_io::load(std::path::Path::new(path)),
    };
    let trace = match loaded {
        Ok(t) => t,
        Err(e) => {
            eprintln!("analyze: cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = trace.validate() {
        eprintln!("analyze: warning: trace fails validation: {e}");
    }

    // The full ensemble report (stats, modes, diagnosis).
    println!("{}", report::render(&trace));

    // Per-phase breakdown.
    let phases = phase_summaries(&trace);
    if !phases.is_empty() {
        println!("## Phases");
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "phase", "start(s)", "dur(s)", "read(MB)", "write(MB)", "slowest(s)"
        );
        for p in &phases {
            println!(
                "{:>6} {:>10.2} {:>10.2} {:>12.1} {:>12.1} {:>12.3}",
                p.phase,
                p.start.as_secs_f64(),
                p.duration().as_secs_f64(),
                p.bytes_read as f64 / 1e6,
                p.bytes_written as f64 / 1e6,
                p.slowest_op.as_secs_f64()
            );
        }
    }

    // Slowest rank — the "slowest individual performer".
    if let Some((rank, secs)) = trace.slowest_rank() {
        println!("\nslowest rank: {rank} ({secs:.1} s of I/O time)");
    }

    if want_diagram {
        println!("\n{}", ascii::trace_diagram(&trace, 24, 100));
        let curve = write_rate_curve(&trace, trace.makespan().as_secs_f64().max(1e-9) / 100.0);
        println!(
            "{}",
            ascii::rate_curve_text(&curve, 8, "aggregate write rate")
        );
    }

    if let Some(dir) = csv_dir {
        for kind in [CallKind::Read, CallKind::Write, CallKind::MetaWrite] {
            let durs = trace.durations_of(kind);
            if durs.len() < 2 {
                continue;
            }
            let hist = LogHistogram::from_samples(&durs, 60);
            vcsv::save(&dir.join(format!("{}_hist.csv", kind.name())), |w| {
                vcsv::log_histogram_csv(&hist, w)
            })
            .expect("csv write");
            let d = EmpiricalDist::new(&durs);
            vcsv::save(&dir.join(format!("{}_cdf.csv", kind.name())), |w| {
                vcsv::xy_csv("t_s,fraction", &d.progress_curve(), w)
            })
            .expect("csv write");
        }
        println!("\nCSV exports written to {}", dir.display());
    }
}

/// The `--stream` path: one record in memory at a time, report rendered
/// from the mergeable ensemble snapshot and the online diagnoser.
fn stream_analyze(path: &str, forced_format: Option<TraceFormat>) {
    let mut diagnoser = StreamDiagnoser::with_defaults();
    let pipeline = IngestPipeline::new(IngestConfig::default());
    let (meta, n) = {
        let mut tee = Tee(&mut diagnoser, pipeline.sink());
        let p = std::path::Path::new(path);
        let streamed = match forced_format {
            // A forced format bypasses sniffing (e.g. a trace behind a
            // pipe-unfriendly name); mismatches fail with a parse error.
            Some(format) => std::fs::File::open(p)
                .and_then(|f| codec_for(format).stream(&mut std::io::BufReader::new(f), &mut tee)),
            None => pio_ingest::stream_file(p, &mut tee),
        };
        match streamed {
            Ok(out) => out,
            Err(e) => {
                eprintln!("analyze: cannot stream {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    let snap = pipeline.finish();
    println!(
        "# {} [{}]: {} ranks, seed {}, {} records (streamed)\n",
        meta.experiment, meta.platform, meta.ranks, meta.seed, n
    );
    println!("{}", pio_viz::snapshot_panel(&snap, 40));
    println!("## Online findings");
    if n == 0 {
        // A valid but empty stream (header only): a clean "no data"
        // verdict, not a healthy-looking report over zero events.
        println!("no data: the stream contained zero records — nothing to diagnose");
        return;
    }
    print!("{}", pio_viz::findings_text(diagnoser.findings()));
}
