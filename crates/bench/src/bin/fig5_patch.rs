//! Regenerate Figure 5: MADbench on Franklin before vs after the Lustre
//! read-ahead patch — (a) per-read progress curves deteriorating from
//! read 4 to read 8, (b) the read histogram before/after, (c) the 4.2×
//! run-time recovery.
//!
//! Usage: `fig5_patch [--scale N]`.

use pio_bench::fig5;
use pio_bench::util::{print_rows, results_dir, scale_from_args, shards_from_args, Row};
use pio_core::compare;
use pio_viz::ascii;
use pio_viz::csv as vcsv;

fn main() {
    let scale = scale_from_args(1);
    pio_mpi::set_default_shards(shards_from_args());
    println!("# Figure 5 — the Lustre strided read-ahead bug (scale 1/{scale})");
    let r = fig5::run(scale, 5);

    // Panel (a): per-read-index progress (quantiles of the CDFs).
    println!("\n## (a) middle-phase reads by index (buggy run)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "read", "p50(s)", "p90(s)", "p99(s)", "max(s)"
    );
    for (m, d) in &r.phase_reads {
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            m,
            d.median(),
            d.quantile(0.9),
            d.quantile(0.99),
            d.max()
        );
    }
    match &r.deterioration {
        Some(f) => println!("diagnosis: {f}"),
        None => println!("diagnosis: no progressive deterioration flagged"),
    }
    let curves: Vec<(String, Vec<(f64, f64)>)> = r
        .phase_reads
        .iter()
        .map(|(m, d)| (format!("read {m}"), d.progress_curve()))
        .collect();
    println!(
        "\n{}",
        ascii::cdf_text(&curves, 90, "fraction of reads complete vs time")
    );

    // Panel (b): before/after read distributions.
    println!("\n## (b) read ensemble before vs after the patch");
    println!(
        "before: p50 {:.1}s  p99 {:.1}s  max {:.1}s   ({} degraded reads)",
        r.before.read_dist.median(),
        r.before.read_dist.quantile(0.99),
        r.before.read_dist.max(),
        r.before.degraded_reads
    );
    println!(
        "after:  p50 {:.1}s  p99 {:.1}s  max {:.1}s   ({} degraded reads)",
        r.after.read_dist.median(),
        r.after.read_dist.quantile(0.99),
        r.after.read_dist.max(),
        r.after.degraded_reads
    );

    // Per-class before/after comparison (the KS view of panel b).
    println!("\n## per-class comparison (before vs after)");
    println!(
        "{}",
        compare::render(&compare::compare(&r.before.trace, &r.after.trace))
    );

    // Panel (c): run times.
    let rows = vec![
        Row::new("run time before patch", 2200.0, r.before.runtime_s, "s"),
        Row::new("run time after patch", 520.0, r.after.runtime_s, "s"),
        Row::new("speedup from the patch", 4.2, r.speedup, "x"),
    ];
    print_rows("Figure 5: paper vs measured", &rows);

    let dir = results_dir();
    for (m, d) in &r.phase_reads {
        vcsv::save(&dir.join(format!("fig5_progress_read{m}.csv")), |w| {
            vcsv::xy_csv("t_s,fraction_complete", &d.progress_curve(), w)
        })
        .expect("csv");
    }
    vcsv::save(&dir.join("fig5_read_hist_before.csv"), |w| {
        vcsv::log_histogram_csv(&r.before.read_hist, w)
    })
    .expect("csv");
    vcsv::save(&dir.join("fig5_read_hist_after.csv"), |w| {
        vcsv::log_histogram_csv(&r.after.read_hist, w)
    })
    .expect("csv");
    println!("\nCSV series written to {}", dir.display());
}
