//! Convert traces between JSONL and the binary ptb / ptb2 formats.
//!
//! Usage: `trace_convert <in> <out> [--format jsonl|ptb|ptb2] [--verify]`
//!
//! The input format is sniffed from the file's bytes; the output format
//! comes from `--format`, or failing that from the output extension
//! (`.ptb` → ptb, `.ptb2` → ptb2, anything else → JSONL). With
//! `--verify`, the written
//! file is read back and checked record-for-record against the input —
//! a full round-trip proof, not just a clean exit.

use pio_bench::util::format_from_args;
use pio_trace::io as trace_io;
use pio_trace::TraceFormat;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Positional args: everything that is neither a flag nor the value
    // of --format.
    let mut positional: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in args.iter().skip(1) {
        if skip {
            skip = false;
        } else if a == "--format" {
            skip = true;
        } else if !a.starts_with("--") {
            positional.push(a.as_str());
        }
    }
    let [input, output] = positional[..] else {
        eprintln!("usage: trace_convert <in> <out> [--format jsonl|ptb|ptb2] [--verify]");
        std::process::exit(2);
    };
    let verify = args.iter().any(|a| a == "--verify");
    let in_path = Path::new(input);
    let out_path = Path::new(output);

    let in_format = match TraceFormat::sniff(in_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_convert: cannot read {input}: {e}");
            std::process::exit(1);
        }
    };
    let out_format = format_from_args()
        .unwrap_or_else(|| TraceFormat::from_extension(out_path).unwrap_or(TraceFormat::Jsonl));

    let trace = match trace_io::load(in_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_convert: cannot load {input}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = trace_io::save_as(&trace, out_path, out_format) {
        eprintln!("trace_convert: cannot write {output}: {e}");
        std::process::exit(1);
    }
    let out_bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "{}: {} records, {} -> {} ({} bytes)",
        output,
        trace.records.len(),
        in_format.name(),
        out_format.name(),
        out_bytes
    );

    if verify {
        let back = match trace_io::load(out_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_convert: verify: cannot re-read {output}: {e}");
                std::process::exit(1);
            }
        };
        if back.meta != trace.meta {
            eprintln!("trace_convert: verify FAILED: metadata differs");
            std::process::exit(1);
        }
        if back.records != trace.records {
            eprintln!(
                "trace_convert: verify FAILED: records differ ({} vs {})",
                back.records.len(),
                trace.records.len()
            );
            std::process::exit(1);
        }
        eprintln!(
            "verify: round trip OK ({} records identical)",
            back.records.len()
        );
    }
}
