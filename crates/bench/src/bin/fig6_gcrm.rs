//! Regenerate Figure 6: the GCRM optimization ladder at 10,240 tasks —
//! baseline → collective buffering (80 writers) → 1 MiB alignment →
//! aggregated metadata; per stage the trace, aggregate write rate, and
//! the size-normalized (sec/MB) histograms split into data and metadata
//! classes.
//!
//! Usage: `fig6_gcrm [--scale N] [--fault <plan>] [--fault-schedule <spec>]`.

use pio_bench::fig6;
use pio_bench::util::{
    fault_or_schedule_from_args, print_rows, results_dir, scale_from_args, shards_from_args, Row,
};
use pio_core::loghist::LogHistogram;
use pio_viz::ascii;
use pio_viz::csv as vcsv;

fn main() {
    let scale = scale_from_args(1);
    pio_mpi::set_default_shards(shards_from_args());
    let fault = fault_or_schedule_from_args();
    match &fault {
        Some(_) => println!("# Figure 6 — GCRM optimization ladder (scale 1/{scale}, faulted)"),
        None => println!("# Figure 6 — GCRM optimization ladder (scale 1/{scale})"),
    }
    let results = fig6::run_all_with_fault(scale, 11, fault);
    let dir = results_dir();
    let scale_f = scale as f64;

    for r in &results {
        println!("\n## stage {}: {} — {:.0} s", r.stage, r.label, r.runtime_s);
        println!("{}", ascii::trace_diagram(&r.trace, 12, 100));
        println!(
            "{}",
            ascii::rate_curve_text(&r.write_rate, 6, "aggregate write rate")
        );
        println!(
            "data records: {:.3} s/MB median ({:.2} MB/s per task); worst {:.3} s/MB",
            r.data_sec_per_mb.median(),
            1.0 / r.data_sec_per_mb.median().max(1e-12),
            r.data_sec_per_mb.quantile(0.99)
        );
        if let Some(meta) = &r.meta_sec_per_mb {
            println!(
                "metadata ops: {:.3} s/MB median over {} ops",
                meta.median(),
                meta.n()
            );
        }
        println!(
            "lock conflicts {}  sync writes {}  peak write rate {:.0} MB/s (x scale: {:.0})",
            r.lock_conflicts,
            r.sync_writes,
            r.write_rate.peak(),
            r.write_rate.peak() * scale_f
        );
        match &r.serialized {
            Some(f) => println!("diagnosis: {f}"),
            None => println!("diagnosis: no rank-serialization flagged"),
        }

        let data_hist = LogHistogram::from_samples(r.data_sec_per_mb.samples(), 60);
        vcsv::save(
            &dir.join(format!("fig6_stage{}_data_secmb.csv", r.stage)),
            |w| vcsv::log_histogram_csv(&data_hist, w),
        )
        .expect("csv");
        if let Some(meta) = &r.meta_sec_per_mb {
            let meta_hist = LogHistogram::from_samples(meta.samples(), 60);
            vcsv::save(
                &dir.join(format!("fig6_stage{}_meta_secmb.csv", r.stage)),
                |w| vcsv::log_histogram_csv(&meta_hist, w),
            )
            .expect("csv");
        }
        vcsv::save(
            &dir.join(format!("fig6_stage{}_write_rate.csv", r.stage)),
            |w| vcsv::rate_curve_csv(&r.write_rate, w),
        )
        .expect("csv");
    }

    let mut rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                format!("stage {} ({}) run time", r.stage, r.label),
                fig6::PAPER_RUNTIMES[r.stage as usize],
                r.runtime_s,
                "s",
            )
        })
        .collect();
    rows.push(Row::new(
        "overall improvement",
        310.0 / 75.0,
        results[0].runtime_s / results[3].runtime_s.max(1e-9),
        "x",
    ));
    print_rows("Figure 6: paper vs measured", &rows);
    println!("\nCSV series written to {}", dir.display());
}
