//! Perf-regression harness: run the fixed hot-path scenarios and write
//! `BENCH_summary.json` (events/sec, ns/op, peak RSS) so the performance
//! trajectory is machine-readable commit-to-commit.
//!
//! Usage: `bench_summary [--out PATH] [--reps N]` (default
//! `BENCH_summary.json`, per-metric repetition defaults).

use pio_bench::summary;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out = "BENCH_summary.json".to_string();
    let mut reps: Option<u32> = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--out" {
            match args.get(i + 1) {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            }
        }
        if arg == "--reps" {
            match args.get(i + 1).and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => reps = Some(n),
                _ => {
                    eprintln!("error: --reps requires a positive integer");
                    std::process::exit(2);
                }
            }
        }
    }

    println!("== bench_summary: fixed-scale hot-path scenarios ==");
    let s = summary::run_all_with(reps);
    print!("{}", summary::render(&s));

    let json = serde_json::to_string(&s).expect("serialize summary");
    std::fs::write(&out, &json).expect("write summary JSON");
    println!("wrote {out}");
}
