//! Perf-regression harness: run the fixed hot-path scenarios and write
//! `BENCH_summary.json` (events/sec, ns/op, peak RSS) so the performance
//! trajectory is machine-readable commit-to-commit.
//!
//! Usage:
//!
//! ```text
//! bench_summary [--out PATH] [--reps N] [--only PREFIX]...
//!               [--baseline PATH [--gate METRIC]... [--tolerance PCT]]
//! ```
//!
//! `--only` restricts the run to metrics whose name starts with the
//! given prefix (repeatable; whole sections are skipped when nothing in
//! them matches). `--baseline` enables the regression gate: each
//! `--gate` metric (default `fleetd/pipeline_serial_8x50k`) is compared
//! against the baseline file's `ns_per_op` and the process exits
//! nonzero if any gate regresses by more than `--tolerance` percent
//! (default 25). A failing gate gets one full re-run before the verdict,
//! so a single scheduler hiccup does not fail CI.

use pio_bench::summary::{self, BenchSummary};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out = "BENCH_summary.json".to_string();
    let mut reps: Option<u32> = None;
    let mut only: Vec<String> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut gates: Vec<String> = Vec::new();
    let mut tolerance = 25.0f64;
    for (i, arg) in args.iter().enumerate() {
        let value = || args.get(i + 1).cloned();
        match arg.as_str() {
            "--out" => match value() {
                Some(p) => out = p,
                None => die("--out requires a path"),
            },
            "--reps" => match value().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => reps = Some(n),
                _ => die("--reps requires a positive integer"),
            },
            "--only" => match value() {
                Some(p) => only.push(p),
                None => die("--only requires a metric-name prefix"),
            },
            "--baseline" => match value() {
                Some(p) => baseline = Some(p),
                None => die("--baseline requires a path"),
            },
            "--gate" => match value() {
                Some(m) => gates.push(m),
                None => die("--gate requires a metric name"),
            },
            "--tolerance" => match value().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => die("--tolerance requires a non-negative percentage"),
            },
            _ => {}
        }
    }

    println!("== bench_summary: fixed-scale hot-path scenarios ==");
    let mut s = summary::run_filtered(reps, &only);
    print!("{}", summary::render(&s));

    if let Some(path) = &baseline {
        let base: BenchSummary = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|j| serde_json::from_str(&j).map_err(|e| e.to_string()))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot load baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        if gates.is_empty() {
            gates.push("fleetd/pipeline_serial_8x50k".to_string());
        }
        let mut failures = summary::gate_regressions(&base, &s, &gates, tolerance);
        if !failures.is_empty() {
            eprintln!("gate exceeded tolerance; re-running once for noise:");
            for f in &failures {
                eprintln!("  {f}");
            }
            s = summary::run_filtered(reps, &only);
            print!("{}", summary::render(&s));
            failures = summary::gate_regressions(&base, &s, &gates, tolerance);
        }
        if failures.is_empty() {
            println!(
                "gate ok: {} metric(s) within {tolerance}% of {path}",
                gates.len()
            );
        } else {
            for f in &failures {
                eprintln!("gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }

    let json = serde_json::to_string(&s).expect("serialize summary");
    std::fs::write(&out, &json).expect("write summary JSON");
    println!("wrote {out}");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
