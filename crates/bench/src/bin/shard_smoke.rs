//! Sharded-engine smoke: run one IOR shared-file scenario through the
//! parallel engine at two shard counts and diff the reports field by
//! field. The shard count must be a pure throughput knob — records,
//! statistics, utilization, event count, and end time all identical —
//! so any divergence exits non-zero. CI runs this at `--scale 256`
//! with shards 1 vs 4.

use pio_bench::util::scale_from_args;
use pio_fs::FsConfig;
use pio_mpi::{RunConfig, RunReport, Runner};
use pio_workloads::IorConfig;

fn run(job: &pio_mpi::Job, fs: &FsConfig, shards: u32) -> RunReport {
    Runner::new(job, RunConfig::new(fs.clone(), 7001, "shard-smoke"))
        .shards(shards)
        .execute_one()
        .unwrap_or_else(|e| {
            eprintln!("error: shard-smoke run @ {shards} shards: {e}");
            std::process::exit(1);
        })
}

fn main() {
    let scale = scale_from_args(256);
    let ior = IorConfig {
        tasks: scale,
        block_bytes: 64 << 20,
        segments: 2,
        repetitions: 1,
        read_back: true,
        file_per_process: false,
    };
    let job = ior.job();
    let fs = FsConfig::franklin();

    let (lo, hi) = (1u32, 4u32);
    let a = run(&job, &fs, lo);
    let b = run(&job, &fs, hi);

    let mut diffs = Vec::new();
    if a.trace().records != b.trace().records {
        diffs.push("trace records");
    }
    if a.events != b.events {
        diffs.push("event count");
    }
    if a.end != b.end {
        diffs.push("end time");
    }
    if a.stats != b.stats {
        diffs.push("fs stats");
    }
    if a.lock_stats != b.lock_stats {
        diffs.push("lock stats");
    }
    if a.util != b.util {
        diffs.push("utilization");
    }

    println!(
        "shard smoke: IOR {} ranks, shards {lo} vs {hi}: {} records, {} events, end {:.3}s",
        scale,
        a.trace().records.len(),
        a.events,
        a.end.as_secs_f64()
    );
    if diffs.is_empty() {
        println!("PASS: reports bit-identical across shard counts");
    } else {
        eprintln!(
            "FAIL: shard counts {lo} and {hi} diverge in: {}",
            diffs.join(", ")
        );
        std::process::exit(1);
    }
}
