//! Fault × workload matrix driver: every fault class against the
//! workload that exposes its ensemble signature, two seeds each, with a
//! baseline-clean, signature-present, and bit-reproducibility check per
//! cell. Exits non-zero if any cell fails — CI smoke-runs this at
//! `--scale 8`.

use pio_bench::fault_matrix::{empty_plan_is_inert, render, run_matrix};
use pio_bench::util::scale_from_args;

fn main() {
    let scale = scale_from_args(8);
    let seeds = [101, 202];

    println!("== fault x workload matrix (scale {scale}, seeds {seeds:?}) ==");
    let cells = run_matrix(scale, &seeds);
    print!("{}", render(&cells));

    let inert = empty_plan_is_inert(scale, seeds[0]);
    println!(
        "no-fault inertness (empty plan == no plan): {}",
        if inert { "exact" } else { "VIOLATED" }
    );

    let failed = cells.iter().filter(|c| !c.pass()).count();
    if failed > 0 || !inert {
        eprintln!("FAIL: {failed} cell(s) failed");
        std::process::exit(1);
    }
    println!("PASS: all {} cells", cells.len());
}
