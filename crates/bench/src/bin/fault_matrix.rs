//! Fault × workload matrix driver: every fault class against the
//! workload that exposes its ensemble signature, two seeds each, with a
//! baseline-clean, signature-present, and bit-reproducibility check per
//! cell. Exits non-zero if any cell fails — CI smoke-runs this at
//! `--scale 16` on both engines (classic, and `--shards 4` for the
//! sharded one) and uploads the rendered table (`--out`) plus the
//! compound cells' per-window fingerprint evidence (`--windows`) as
//! artifacts.

use pio_bench::fault_matrix::{empty_plan_is_inert, per_window_report, render, run_matrix};
use pio_bench::util::{parse_out, parse_path_flag, scale_from_args, shards_from_args};

fn main() {
    let scale = scale_from_args(8);
    pio_mpi::set_default_shards(shards_from_args());
    let args: Vec<String> = std::env::args().collect();
    let parsed = parse_out(&args).and_then(|o| Ok((o, parse_path_flag(&args, "--windows")?)));
    let (out, windows_out) = match parsed {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--scale N] [--shards N] [--out PATH] [--windows PATH]",
                args.first().map_or("fault_matrix", |a| a)
            );
            std::process::exit(2);
        }
    };
    let seeds = [101, 202];

    let header = format!("== fault x workload matrix (scale {scale}, seeds {seeds:?}) ==");
    println!("{header}");
    let cells = run_matrix(scale, &seeds);
    let table = render(&cells);
    print!("{table}");

    let inert = empty_plan_is_inert(scale, seeds[0]);
    let inert_line = format!(
        "no-fault inertness (empty plan == no plan): {}",
        if inert { "exact" } else { "VIOLATED" }
    );
    println!("{inert_line}");

    let failed = cells.iter().filter(|c| !c.pass()).count();
    let verdict = if failed > 0 || !inert {
        format!("FAIL: {failed} cell(s) failed")
    } else {
        format!("PASS: all {} cells", cells.len())
    };

    if let Some(path) = out {
        let body = format!("{header}\n{table}{inert_line}\n{verdict}\n");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // Per-window evidence for the compound cells: which fingerprint
    // fired in which time window, next to the verdict it produced.
    if let Some(path) = windows_out {
        let body = format!(
            "== per-window attribution evidence (scale {scale}, seeds {seeds:?}) ==\n\n{}",
            per_window_report(scale, &seeds)
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if failed > 0 || !inert {
        eprintln!("{verdict}");
        std::process::exit(1);
    }
    println!("{verdict}");
}
