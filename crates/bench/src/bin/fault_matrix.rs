//! Fault × workload matrix driver: every fault class against the
//! workload that exposes its ensemble signature, two seeds each, with a
//! baseline-clean, signature-present, and bit-reproducibility check per
//! cell. Exits non-zero if any cell fails — CI smoke-runs this at
//! `--scale 8` and uploads the rendered table (`--out`) as an artifact.

use pio_bench::fault_matrix::{empty_plan_is_inert, render, run_matrix};
use pio_bench::util::{parse_out, scale_from_args, shards_from_args};

fn main() {
    let scale = scale_from_args(8);
    pio_mpi::set_default_shards(shards_from_args());
    let args: Vec<String> = std::env::args().collect();
    let out = match parse_out(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--scale N] [--shards N] [--out PATH]",
                args.first().map_or("fault_matrix", |a| a)
            );
            std::process::exit(2);
        }
    };
    let seeds = [101, 202];

    let header = format!("== fault x workload matrix (scale {scale}, seeds {seeds:?}) ==");
    println!("{header}");
    let cells = run_matrix(scale, &seeds);
    let table = render(&cells);
    print!("{table}");

    let inert = empty_plan_is_inert(scale, seeds[0]);
    let inert_line = format!(
        "no-fault inertness (empty plan == no plan): {}",
        if inert { "exact" } else { "VIOLATED" }
    );
    println!("{inert_line}");

    let failed = cells.iter().filter(|c| !c.pass()).count();
    let verdict = if failed > 0 || !inert {
        format!("FAIL: {failed} cell(s) failed")
    } else {
        format!("PASS: all {} cells", cells.len())
    };

    if let Some(path) = out {
        let body = format!("{header}\n{table}{inert_line}\n{verdict}\n");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if failed > 0 || !inert {
        eprintln!("{verdict}");
        std::process::exit(1);
    }
    println!("{verdict}");
}
