//! Generate a sample trace file for `analyze` (also doubles as the
//! save-path smoke test): a scaled IOR run saved as JSONL or, with
//! `--format ptb|ptb2` (or a `.ptb` / `.ptb2` output extension), one of
//! the binary formats.
use pio_bench::util::format_from_args;
use pio_fs::FsConfig;
use pio_mpi::{RunConfig, Runner};
use pio_trace::TraceFormat;
use pio_workloads::IorConfig;

fn main() {
    let path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "results/sample_trace.jsonl".into());
    let format = format_from_args().unwrap_or_else(|| {
        TraceFormat::from_extension(std::path::Path::new(&path)).unwrap_or(TraceFormat::Jsonl)
    });
    let cfg = IorConfig {
        repetitions: 2,
        ..IorConfig::paper_fig1().scaled(32)
    };
    let job = cfg.job();
    let res = Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin().scaled(32), 7, "sample-ior"),
    )
    .execute_one()
    .unwrap();
    if let Some(parent) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    pio_trace::io::save_as(res.trace(), std::path::Path::new(&path), format).unwrap();
    eprintln!(
        "wrote {} records to {path} ({})",
        res.trace().records.len(),
        format.name()
    );
}
