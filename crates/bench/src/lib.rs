//! # pio-bench — experiment drivers for every figure of the paper
//!
//! Each `figN` module runs the corresponding experiment end-to-end on the
//! simulator, extracts the series the paper plots, and returns them as
//! plain data; the `src/bin/figN_*.rs` binaries print the paper-vs-
//! measured comparison and export CSVs under `results/`.

pub mod fault_matrix;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod summary;
pub mod util;
