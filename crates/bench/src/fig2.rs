//! Figure 2 (+ the §III-A rate table): IOR with the 512 MB block split
//! into k = 1, 2, 4, 8 write() calls, no intermediate barrier.
//!
//! The paper measures 11,610 → 12,016 → 13,446 → 13,486 MB/s as k grows —
//! a ~16% "free" speedup explained by the Law of Large Numbers: per-task
//! totals `t_k` concentrate, so the worst task (which sets the phase
//! time) improves. We report the measured rate, the distribution width
//! of `t_k`, and the convolution-based prediction from the k=1
//! distribution.

use pio_core::empirical::EmpiricalDist;
use pio_core::lln;
use pio_trace::CallKind;
use pio_workloads::presets::fig2_ior;

/// One row of the Figure 2 table.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Number of write calls the block is split into.
    pub k: u32,
    /// Transfer size per call (MB).
    pub xfer_mb: f64,
    /// Measured aggregate rate (MB/s): total data / write-phase span.
    pub rate_mb_s: f64,
    /// Rate relative to k = 1.
    pub speedup: f64,
    /// Coefficient of variation of per-task totals `t_k`.
    pub cv_tk: f64,
    /// The paper's measured rate for this k.
    pub paper_rate: f64,
    /// Per-task totals distribution (for histograms).
    pub tk_dist: EmpiricalDist,
}

/// The paper's reported rates for k = 1, 2, 4, 8.
pub const PAPER_RATES: [(u32, f64); 4] =
    [(1, 11_610.0), (2, 12_016.0), (4, 13_446.0), (8, 13_486.0)];

/// Run the sweep at `scale` and compute per-k rows.
pub fn run(scale: u32, seed: u64) -> Vec<Fig2Row> {
    run_with_fault(scale, seed, None)
}

/// [`run`] under an optional fault plan (applied to every k, so the
/// sweep compares like against like).
pub fn run_with_fault(scale: u32, seed: u64, fault: Option<pio_fault::FaultPlan>) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    let mut rate1 = None;
    for &(k, paper_rate) in &PAPER_RATES {
        let exp = fig2_ior(k, seed + k as u64, scale);
        let mut runner = pio_mpi::Runner::new(&exp.job, exp.run.clone());
        if let Some(plan) = &fault {
            runner = runner.fault_plan(plan.clone());
        }
        let res = runner.execute_one().expect("fig2 run");
        let total_mb = res.stats.bytes_written as f64 / 1e6;
        // "The run time for an experiment, and therefore the reported
        // data rate, is determined by the slowest I/O operation amongst
        // all the tasks" — the write span (write-back continues in the
        // background, exactly as on the real client).
        let span = crate::util::span_of(res.trace(), CallKind::Write);
        let rate = total_mb / span.max(1e-9);

        // Per-task totals t_k.
        let ranks = res.trace().meta.ranks;
        let mut totals = vec![0.0f64; ranks as usize];
        for r in res.trace().of_kind(CallKind::Write) {
            totals[r.rank as usize] += r.secs();
        }
        let tk_dist = EmpiricalDist::new(&totals);
        let cv = tk_dist.cv().unwrap_or(0.0);
        let r1 = *rate1.get_or_insert(rate);
        rows.push(Fig2Row {
            k,
            xfer_mb: (exp.job.total_bytes_written() / ranks as u64 / k as u64) as f64 / 1e6,
            rate_mb_s: rate,
            speedup: rate / r1,
            cv_tk: cv,
            paper_rate,
            tk_dist,
        });
    }
    rows
}

/// Convolution prediction of the k-sweep from the k=1 per-call
/// distribution — the analytical half of the paper's Figure 2 argument.
pub fn predict_from_k1(rows: &[Fig2Row]) -> Vec<(u32, f64)> {
    let k1 = &rows[0];
    let ks: Vec<u32> = rows.iter().map(|r| r.k).collect();
    lln::predicted_rate_vs_k(&k1.tk_dist, &ks, k1.tk_dist.n() as u32, k1.rate_mb_s, 96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_improves_with_k_and_tk_narrows() {
        let rows = run(16, 7);
        assert_eq!(rows.len(), 4);
        // The paper's direction: k=8 beats k=1 and t_k narrows.
        assert!(
            rows[3].rate_mb_s > rows[0].rate_mb_s,
            "k=8 {} vs k=1 {}",
            rows[3].rate_mb_s,
            rows[0].rate_mb_s
        );
        assert!(
            rows[3].cv_tk < rows[0].cv_tk,
            "cv must shrink: {} vs {}",
            rows[3].cv_tk,
            rows[0].cv_tk
        );
        // Magnitude sanity: the gain is a few percent to tens of percent,
        // not orders of magnitude.
        let gain = rows[3].rate_mb_s / rows[0].rate_mb_s;
        assert!(gain < 2.0, "gain {gain}");
    }

    #[test]
    fn prediction_is_monotone() {
        let rows = run(32, 3);
        let pred = predict_from_k1(&rows);
        assert_eq!(pred.len(), 4);
        for w in pred.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.999, "{pred:?}");
        }
    }
}
