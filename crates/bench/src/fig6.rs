//! Figure 6: GCRM at 10,240 tasks through the four-configuration
//! optimization ladder — baseline 310 s → collective buffering 190 s →
//! 1 MiB alignment 150 s → aggregated metadata 75 s. Panels per stage:
//! trace, aggregate write rate, and the dual-axis (MB/s, sec/MB)
//! histogram split into data (1.6 MB records) and metadata (<3 KB)
//! classes.

use pio_core::diagnosis::{detect_serialized_rank, Finding, Thresholds};
use pio_core::empirical::EmpiricalDist;
use pio_core::rates::{sec_per_mb_samples, write_rate_curve, RateCurve};
use pio_trace::{CallKind, Trace};
use pio_workloads::presets::fig6_gcrm;

/// One stage's Figure 6 row.
pub struct Fig6Result {
    /// Stage index (0 = baseline … 3 = metadata aggregated).
    pub stage: u32,
    /// Stage label.
    pub label: &'static str,
    /// Total run time (s).
    pub runtime_s: f64,
    /// Aggregate write-rate curve.
    pub write_rate: RateCurve,
    /// Data-record cost distribution in sec/MB (blue class).
    pub data_sec_per_mb: EmpiricalDist,
    /// Metadata cost distribution in sec/MB (red class), if any.
    pub meta_sec_per_mb: Option<EmpiricalDist>,
    /// Extent-lock conflicts.
    pub lock_conflicts: u64,
    /// Writes forced synchronous by conflicts.
    pub sync_writes: u64,
    /// Serialized-rank finding (expected through stage 2).
    pub serialized: Option<Finding>,
    /// The trace.
    pub trace: Trace,
}

/// The paper's run times per stage.
pub const PAPER_RUNTIMES: [f64; 4] = [310.0, 190.0, 150.0, 75.0];

/// Stage labels.
pub const LABELS: [&str; 4] = [
    "baseline",
    "collective buffering (80 writers)",
    "+ 1 MiB alignment",
    "+ metadata aggregation",
];

/// Run one stage at `scale`.
pub fn run(stage: u32, scale: u32, seed: u64) -> Fig6Result {
    run_with_fault(stage, scale, seed, None)
}

/// [`run`] under an optional fault plan.
pub fn run_with_fault(
    stage: u32,
    scale: u32,
    seed: u64,
    fault: Option<pio_fault::FaultPlan>,
) -> Fig6Result {
    let exp = fig6_gcrm(stage, seed, scale);
    let mut runner = pio_mpi::Runner::new(&exp.job, exp.run.clone());
    if let Some(plan) = fault {
        runner = runner.fault_plan(plan);
    }
    let res = runner.execute_one().expect("fig6 run");
    let data: Vec<f64> = sec_per_mb_samples(res.trace(), |r| r.call == CallKind::Write);
    let meta: Vec<f64> = sec_per_mb_samples(res.trace(), |r| {
        matches!(r.call, CallKind::MetaWrite | CallKind::MetaRead)
    });
    let dt = (res.wall_secs() / 200.0).max(1e-3);
    Fig6Result {
        stage,
        label: LABELS[stage as usize],
        runtime_s: res.wall_secs(),
        write_rate: write_rate_curve(res.trace(), dt),
        data_sec_per_mb: EmpiricalDist::new(&data),
        meta_sec_per_mb: if meta.is_empty() {
            None
        } else {
            Some(EmpiricalDist::new(&meta))
        },
        lock_conflicts: res.lock_stats.contended,
        sync_writes: res.stats.sync_writes,
        serialized: detect_serialized_rank(res.trace(), &Thresholds::default()),
        trace: res.into_trace(),
    }
}

/// Run the whole ladder.
pub fn run_all(scale: u32, seed: u64) -> Vec<Fig6Result> {
    run_all_with_fault(scale, seed, None)
}

/// [`run_all`] under an optional fault plan (same plan every stage).
pub fn run_all_with_fault(
    scale: u32,
    seed: u64,
    fault: Option<pio_fault::FaultPlan>,
) -> Vec<Fig6Result> {
    (0..4)
        .map(|s| run_with_fault(s, scale, seed, fault.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_improves_and_mechanisms_match() {
        let results = run_all(64, 13); // 160 tasks
        let times: Vec<f64> = results.iter().map(|r| r.runtime_s).collect();
        // Headline: >2x from baseline to final stage even at small scale.
        assert!(times[3] < times[0] / 1.5, "ladder must improve: {times:?}");
        // Mechanisms: baseline conflicts heavily; aligned stages don't.
        assert!(results[0].lock_conflicts > 0);
        assert_eq!(results[2].lock_conflicts, 0, "alignment removes conflicts");
        assert_eq!(results[3].lock_conflicts, 0);
        // Baseline writes are forced synchronous; aligned ones are not.
        assert!(results[0].sync_writes > 0);
        assert_eq!(results[2].sync_writes, 0);
        // Metadata exists in all stages (aggregated in the last).
        assert!(results[0].meta_sec_per_mb.is_some());
        assert!(results[3].meta_sec_per_mb.is_some());
        // Aggregation: far fewer metadata ops in stage 3.
        let meta_ops_0 = results[0].trace.of_kind(CallKind::MetaWrite).count();
        let meta_ops_3 = results[3].trace.of_kind(CallKind::MetaWrite).count();
        assert!(
            meta_ops_3 * 10 < meta_ops_0,
            "meta ops {meta_ops_0} -> {meta_ops_3}"
        );
    }
}
