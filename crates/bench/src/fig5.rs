//! Figure 5: MADbench on Franklin before vs after the Lustre patch.
//!
//! (a) per-phase read progress curves deteriorating from read 4 to read
//! 8 — the insight that "lead\[s\] directly to determining the source of
//! the bottleneck"; (b) the read histogram before/after; (c) run time
//! 2200 s → 520 s, a 4.2× improvement.

use pio_core::diagnosis::{detect_deterioration_in_groups, Finding, Thresholds};
use pio_core::empirical::EmpiricalDist;
use pio_fs::FsConfig;
use pio_trace::CallKind;
use pio_workloads::madbench::MadbenchConfig;

use crate::fig4::{self, Fig4Result};

/// The before/after comparison.
pub struct Fig5Result {
    /// The buggy Franklin run.
    pub before: Fig4Result,
    /// The patched Franklin run.
    pub after: Fig4Result,
    /// Per middle-phase read distributions of the buggy run, reads 1..=8
    /// (`(read index, distribution)`).
    pub phase_reads: Vec<(u32, EmpiricalDist)>,
    /// Progressive-deterioration finding on the buggy run, if detected.
    pub deterioration: Option<Finding>,
    /// Run-time improvement factor (paper: 4.2×).
    pub speedup: f64,
}

/// Run both configurations at `scale`.
pub fn run(scale: u32, seed: u64) -> Fig5Result {
    let before = fig4::run(FsConfig::franklin(), scale, seed);
    let after = fig4::run(FsConfig::franklin_patched(), scale, seed);
    let cfg = MadbenchConfig::paper().scaled(scale);

    // Middle-phase reads, one distribution per read index.
    let mut phase_reads = Vec::new();
    for (i, samples) in cfg.middle_reads_by_index(&before.trace).iter().enumerate() {
        if !samples.is_empty() {
            phase_reads.push((i as u32 + 1, EmpiricalDist::new(samples)));
        }
    }
    let deterioration = detect_deterioration_in_groups(
        CallKind::Read,
        &cfg.middle_reads_by_index(&before.trace),
        &Thresholds::default(),
    );
    let speedup = before.runtime_s / after.runtime_s.max(1e-9);
    Fig5Result {
        before,
        after,
        phase_reads,
        deterioration,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_recovers_most_of_the_runtime() {
        let r = run(16, 9);
        assert!(
            r.speedup > 1.5,
            "patch must speed MADbench up materially: {}",
            r.speedup
        );
        assert_eq!(r.after.degraded_reads, 0);
        assert!(r.before.degraded_reads > 0);
        // Later middle reads are slower than early ones in the buggy run.
        let early = &r.phase_reads[0].1;
        let late = &r.phase_reads[r.phase_reads.len() - 1].1;
        assert!(
            late.quantile(0.9) > 1.5 * early.quantile(0.9),
            "deterioration expected: early p90 {} late p90 {}",
            early.quantile(0.9),
            late.quantile(0.9)
        );
        // And the patched run's slow tail is gone.
        assert!(
            r.before.read_dist.max() > 3.0 * r.after.read_dist.max(),
            "before max {} after max {}",
            r.before.read_dist.max(),
            r.after.read_dist.max()
        );
    }
}
