//! The perf-regression harness behind the `bench_summary` binary.
//!
//! Runs a fixed set of hot-path scenarios — event-queue churn, the IOR
//! simulation, one fault-matrix cell, and the KDE/bootstrap statistics
//! kernels — and reports each as a machine-readable [`Metric`]
//! (ns/op and ops/sec), plus peak RSS. The binary serializes the result
//! to `BENCH_summary.json` so the performance trajectory of the repo is
//! comparable commit-to-commit.
//!
//! Scenario scales are fixed (they are part of the metric's identity);
//! timings take the best of several repetitions to shave scheduler
//! noise. All inputs are deterministic, so two runs on the same machine
//! measure the same work.

use crate::fault_matrix::{run_cell, scenarios};
use pio_core::bootstrap::median_ci;
use pio_core::empirical::EmpiricalDist;
use pio_core::kde::Kde;
use pio_des::{EventQueue, SimTime};
use pio_fs::FsConfig;
use pio_mpi::{RunConfig, Runner};
use pio_trace::{CallKind, NullSink, Record, Trace, TraceMeta};
use pio_workloads::IorConfig;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// One measured scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Metric {
    /// Stable scenario name (the trajectory key).
    pub name: String,
    /// What one "op" is for this scenario.
    pub unit: String,
    /// Operations per repetition.
    pub ops: u64,
    /// Best-of-reps wall time for one repetition, nanoseconds.
    pub wall_ns: u64,
    /// Nanoseconds per op (best repetition).
    pub ns_per_op: f64,
    /// Ops per second (best repetition).
    pub ops_per_sec: f64,
}

/// One on-disk size measurement (compression-trajectory key).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeMetric {
    /// Stable scenario name (the trajectory key).
    pub name: String,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// Records in the serialized trace.
    pub records: u64,
    /// Bytes per record.
    pub bytes_per_record: f64,
    /// How many times smaller than ptb v1 this encoding is (1.0 for
    /// ptb v1 itself; < 1.0 means larger).
    pub ratio_vs_ptb: f64,
}

/// The whole summary: every metric plus process-level peak memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// Metrics in scenario order.
    pub metrics: Vec<Metric>,
    /// On-disk encoding sizes for the 1M-record ingest trace.
    pub sizes: Vec<SizeMetric>,
    /// Peak resident set size of this process, kilobytes (0 if unknown).
    pub peak_rss_kb: u64,
}

/// Time `scenario` `reps` times; it returns the op count per repetition.
fn measure(name: &str, unit: &str, reps: u32, mut scenario: impl FnMut() -> u64) -> Metric {
    assert!(reps >= 1);
    let mut best = u64::MAX;
    let mut ops = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        ops = scenario();
        let dt = t0.elapsed().as_nanos() as u64;
        best = best.min(dt.max(1));
    }
    Metric {
        name: name.to_string(),
        unit: unit.to_string(),
        ops,
        wall_ns: best,
        ns_per_op: best as f64 / ops.max(1) as f64,
        ops_per_sec: ops as f64 / (best as f64 / 1e9),
    }
}

/// Deterministic tri-modal samples shaped like an IOR ensemble (the same
/// generator the criterion kernels use).
pub fn trimodal_samples(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = match i % 8 {
                0 => 8.0,
                1..=2 => 16.0,
                _ => 32.0,
            };
            base + (i % 97) as f64 * 0.01
        })
        .collect()
}

/// Event-queue churn: interleaved pushes and pops with a scattered time
/// key — the pure queue cost of the DES hot loop.
fn event_queue_churn() -> u64 {
    const N: u64 = 100_000;
    let mut q = EventQueue::new();
    for i in 0..N {
        q.push(SimTime(i * 7919 % 1_000_000), i);
    }
    let mut acc = 0u64;
    while let Some((_, e)) = q.pop() {
        acc = acc.wrapping_add(e);
    }
    black_box(acc);
    N
}

/// Near-future churn: the steady-state DES pattern — every pop schedules
/// a follow-up a short span ahead, so the working set stays small while
/// the event count is large.
fn event_queue_followups() -> u64 {
    const N: u64 = 200_000;
    let mut q = EventQueue::new();
    for i in 0..64u64 {
        q.push(SimTime(i * 131), i);
    }
    let mut processed = 0u64;
    while processed < N {
        let Some((t, e)) = q.pop() else { break };
        processed += 1;
        q.push(SimTime(t.nanos() + 1 + (e * 2654435761) % 10_000), e);
    }
    black_box(q.len());
    processed
}

/// The IOR simulation at 1/64 scale: events per second of real time.
fn ior_sim() -> u64 {
    let cfg = IorConfig {
        repetitions: 1,
        ..IorConfig::paper_fig1().scaled(64)
    };
    let job = cfg.job();
    let res = Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin().scaled(64), 1, "bench_summary"),
    )
    .execute_one()
    .expect("ior run");
    res.events
}

/// The large IOR scenario for the sharded-engine scaling metrics:
/// 4096 ranks × 512 MB, one segment, write-only, shared file on the
/// full (unscaled) Franklin config — big enough that node-shard work
/// dominates the serial coordinator.
fn ior_scale4096_config() -> IorConfig {
    IorConfig {
        tasks: 4096,
        block_bytes: 512 << 20,
        segments: 1,
        repetitions: 1,
        read_back: false,
        file_per_process: false,
    }
}

/// The 4096-rank IOR scenario on the sharded engine: events per second
/// of real time at `shards` worker shards. The report is bit-identical
/// for any shard count, so `ns_per_op` ratios between shard counts are
/// pure wall-clock speedup.
fn ior_sim_sharded(shards: u32) -> u64 {
    let job = ior_scale4096_config().job();
    let res = Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin(), 1, "bench_summary"),
    )
    .shards(shards)
    .execute_one()
    .expect("sharded ior run");
    res.events
}

/// One fault-matrix cell (slow-OST × read-heavy at 1/8 scale): the cost
/// of a full baseline + faulted + reproducibility check.
fn fault_matrix_cell() -> u64 {
    let s = scenarios(8).into_iter().next().expect("scenarios");
    let cell = run_cell(&s, 101);
    assert!(cell.pass(), "fault cell must pass while being timed");
    1
}

/// A plan of eight scheduled faults whose windows all closed before the
/// simulation starts doing I/O: every injector hook runs its time gate
/// on every event and must take the zero-envelope early-out each time.
fn expired_schedule_plan() -> pio_fault::FaultPlan {
    use pio_fault::{Fault, FaultPlan, FaultSchedule};
    let mut plan = FaultPlan::new();
    for i in 0..8usize {
        plan = plan.with_scheduled(
            Fault::SlowOst {
                ost: i,
                slowdown: 100.0,
                ramp_per_s: 0.0,
            },
            FaultSchedule::window(0.0, 0.0),
        );
    }
    plan
}

/// The schedule-overhead scenario's simulation: paper-scale Figure 1
/// IOR (~1M engine events), with or without a fault plan installed.
fn ior_sim_schedule_gate(fault: Option<pio_fault::FaultPlan>) -> pio_mpi::RunReport {
    let cfg = IorConfig {
        repetitions: 2,
        ..IorConfig::paper_fig1()
    };
    let job = cfg.job();
    let mut rc = RunConfig::new(FsConfig::franklin(), 1, "bench_summary");
    if let Some(plan) = fault {
        rc = rc.with_fault(plan);
    }
    Runner::new(&job, rc).execute_one().expect("ior run")
}

/// The schedule-gate overhead check behind `fault/schedule_overhead_1m`:
/// the expired-schedule run must be bit-identical to the clean one (the
/// inertness guarantee), and its best-of-reps wall time at most
/// `tolerance_pct` percent above the clean run's. Returns the scheduled
/// run's metric (renamed to the gate's key) or panics with the
/// violation — a silent slow-down of the simulator hot loop is exactly
/// what this metric exists to catch.
fn schedule_overhead_metric(reps: u32, tolerance_pct: f64) -> Metric {
    let scheduled = ior_sim_schedule_gate(Some(expired_schedule_plan()));
    let clean = ior_sim_schedule_gate(None);
    assert_eq!(
        scheduled.trace().records,
        clean.trace().records,
        "expired schedules must be bit-inert"
    );
    assert_eq!(scheduled.events, clean.events);
    drop((scheduled, clean));

    // Interleave clean and scheduled repetitions so both sides see the
    // same thermal/frequency conditions; a serial block-of-reps layout
    // lets machine drift masquerade as schedule overhead.
    let mut best_clean = u64::MAX;
    let mut best_sched = u64::MAX;
    let mut ops = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        ops = ior_sim_schedule_gate(None).events;
        best_clean = best_clean.min((t0.elapsed().as_nanos() as u64).max(1));
        let t0 = Instant::now();
        let sched_ops = ior_sim_schedule_gate(Some(expired_schedule_plan())).events;
        best_sched = best_sched.min((t0.elapsed().as_nanos() as u64).max(1));
        assert_eq!(sched_ops, ops);
    }
    let clean_ns = best_clean as f64 / ops.max(1) as f64;
    let sched_ns = best_sched as f64 / ops.max(1) as f64;
    let overhead_pct = (sched_ns - clean_ns) / clean_ns * 100.0;
    assert!(
        overhead_pct <= tolerance_pct,
        "schedule gate overhead {overhead_pct:.1}% exceeds {tolerance_pct:.0}% \
         ({sched_ns:.1} ns/event scheduled vs {clean_ns:.1} clean)",
    );
    Metric {
        name: "fault/schedule_overhead_1m".to_string(),
        unit: format!("event (+{overhead_pct:.1}% vs clean)"),
        ops,
        wall_ns: best_sched,
        ns_per_op: sched_ns,
        ops_per_sec: ops as f64 / (best_sched as f64 / 1e9),
    }
}

/// Fleet-service ingest throughput: 8 synthetic tenants streamed
/// concurrently (one feeder thread each) into a 4-worker `pio-fleetd`
/// service with unlimited budget; ops = records the service admitted
/// across all tenants, verified against the machine roll-up.
fn fleetd_ingest(trace: &Trace) -> u64 {
    use pio_fleetd::{FleetConfig, FleetService};
    use pio_trace::RecordSink;
    const JOBS: usize = 8;
    let mut svc = FleetService::new(FleetConfig {
        workers: 4,
        ..FleetConfig::default()
    });
    crossbeam::thread::scope(|scope| {
        for j in 0..JOBS {
            let mut sink = svc.register(&format!("bench-{j}"));
            let records = &trace.records;
            scope.spawn(move |_| {
                // Decoder-sized blocks, as the streaming codecs deliver them.
                for chunk in records.chunks(512) {
                    sink.push_block(chunk);
                }
                sink.finish();
            });
        }
    })
    .expect("fleetd bench scope");
    svc.shutdown();
    let total = svc.rollup().ingested;
    assert_eq!(total, (JOBS * trace.records.len()) as u64);
    total
}

/// The analytical pipeline of one fleet tenant — stream diagnoser,
/// ensemble-snapshot sketch, per-OST usage ledger, top-k slow-op
/// tracking — run serially over the same 8×50k record load as
/// `fleetd/ingest_8x50k_pool4`, with no threads, channels, record
/// clones, or map locks. Records flow in service-sized blocks (the
/// fleet worker's batch of 256) through the columnar `push_block` /
/// `accumulate_block` kernels, exactly as `TenantState::ingest_block`
/// drives them. The delta between the two metrics is the service's
/// transport cost; this one is the analysis floor a fleet worker must
/// pay per admitted record.
fn fleetd_pipeline_serial(trace: &Trace) -> u64 {
    use pio_fleetd::{OstLayout, OstUsage};
    use pio_ingest::{SnapshotBuilder, StreamDiagnoser};
    use pio_trace::RecordSink;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    const JOBS: usize = 8;
    const TOP_K: usize = 8;
    const BATCH: usize = 256;
    let layout = OstLayout::new(1 << 20, 48, 0);
    let mut total = 0u64;
    for _ in 0..JOBS {
        let mut diagnoser = StreamDiagnoser::new(pio_ingest::DiagnoserConfig::default());
        let mut builder = SnapshotBuilder::new(pio_ingest::SnapshotConfig::default());
        let mut ost = OstUsage::new(48);
        // Positive-f64 bit patterns order like the floats themselves.
        let mut slow: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        for chunk in trace.records.chunks(BATCH) {
            diagnoser.push_block(chunk);
            builder.accumulate_block(chunk);
            for r in chunk {
                if matches!(r.call, CallKind::Read | CallKind::Write) {
                    ost.add(layout.ost_of(r.offset), r.secs());
                }
                let key = r.secs().to_bits();
                if slow.len() < TOP_K {
                    slow.push(Reverse(key));
                } else if let Some(&Reverse(min)) = slow.peek() {
                    if key > min {
                        slow.pop();
                        slow.push(Reverse(key));
                    }
                }
                total += 1;
            }
        }
        diagnoser.finish();
        black_box((diagnoser.findings().len(), builder, ost, slow));
    }
    total
}

/// A deterministic MADbench-shaped trace for the parse-throughput
/// metrics (same generator shape as the criterion ingest bench).
pub fn ingest_trace(n: usize) -> Trace {
    let mut t = Trace::new(TraceMeta {
        experiment: "bench_summary".into(),
        platform: "synthetic".into(),
        ranks: 64,
        seed: 0,
    });
    for i in 0..n {
        let call = match i % 4 {
            0 | 1 => CallKind::Read,
            2 => CallKind::Write,
            _ => CallKind::MetaWrite,
        };
        let dur = if i % 97 == 0 {
            5.0 + (i % 13) as f64
        } else {
            0.01 + (i % 31) as f64 * 0.002
        };
        t.push(Record {
            rank: (i % 64) as u32,
            call,
            fd: 3,
            offset: (i as u64) << 20,
            bytes: 1 << 20,
            start_ns: i as u64 * 1000,
            end_ns: i as u64 * 1000 + (dur * 1e9) as u64,
            phase: (i / (n / 8).max(1)) as u32,
        });
    }
    t
}

/// The pre-fast-path JSONL loop (`serde_json` on every line) — kept as
/// the in-file baseline the `ingest/parse_jsonl_1m` speedup is measured
/// against.
fn parse_jsonl_serde(bytes: &[u8]) -> u64 {
    use std::io::BufRead;
    let mut lines = bytes.lines();
    let meta: TraceMeta =
        serde_json::from_str(&lines.next().expect("meta line").expect("meta read"))
            .expect("meta parse");
    black_box(meta);
    let mut n = 0u64;
    for line in lines {
        let line = line.expect("line read");
        if line.trim().is_empty() {
            continue;
        }
        let rec: Record = serde_json::from_str(&line).expect("record parse");
        black_box(&rec);
        n += 1;
    }
    n
}

/// All scenarios, measured with per-metric default repetition counts.
pub fn run_all() -> BenchSummary {
    run_all_with(None)
}

/// [`run_all`] with every metric's repetition count overridden by
/// `reps` (best-of-reps is reported either way; more reps means more
/// robustness against scheduler noise at linear cost).
pub fn run_all_with(reps: Option<u32>) -> BenchSummary {
    run_filtered(reps, &[])
}

/// [`run_all_with`] restricted to metrics whose name starts with any of
/// the `only` prefixes (empty = everything). Whole sections are skipped
/// when nothing in them matches, so a `--only fleetd` run does not pay
/// for building and encoding the 1M-record parse trace.
pub fn run_filtered(reps: Option<u32>, only: &[String]) -> BenchSummary {
    let r = |default: u32| reps.unwrap_or(default).max(1);
    let want = |name: &str| only.is_empty() || only.iter().any(|p| name.starts_with(p.as_str()));
    let mut metrics: Vec<Metric> = Vec::new();
    let mut sizes: Vec<SizeMetric> = Vec::new();

    if want("des/event_queue_churn_100k") {
        metrics.push(measure(
            "des/event_queue_churn_100k",
            "event",
            r(5),
            event_queue_churn,
        ));
    }
    if want("des/event_queue_followups_200k") {
        metrics.push(measure(
            "des/event_queue_followups_200k",
            "event",
            r(5),
            event_queue_followups,
        ));
    }
    // Whole-simulation throughput; ops = engine events.
    if want("sim/ior_scale64") {
        metrics.push(measure("sim/ior_scale64", "event", r(3), ior_sim));
    }
    // Sharded-engine scaling: same scenario, same (bit-identical)
    // result, 1 vs 8 worker shards — the ns/op ratio is the
    // parallel speedup.
    if want("sim/ior_scale4096_shards1") {
        metrics.push(measure("sim/ior_scale4096_shards1", "event", r(1), || {
            ior_sim_sharded(1)
        }));
    }
    if want("sim/ior_scale4096_shards8") {
        metrics.push(measure("sim/ior_scale4096_shards8", "event", r(1), || {
            ior_sim_sharded(8)
        }));
    }
    if want("sim/fault_matrix_cell_scale8") {
        metrics.push(measure(
            "sim/fault_matrix_cell_scale8",
            "cell",
            r(1),
            fault_matrix_cell,
        ));
    }
    // Schedule-gate overhead: the same sim as sim/ior_scale64 but with
    // eight expired scheduled faults installed. Bit-inertness and the
    // <5% wall-clock ceiling are asserted inside, not just reported.
    if want("fault/schedule_overhead_1m") {
        metrics.push(schedule_overhead_metric(r(3), 5.0));
    }

    // Statistics kernels.
    if want("stats/kde_grid_512_n100k") {
        let data = trimodal_samples(100_000);
        let dist = EmpiricalDist::new(&data);
        let kde = Kde::new(&dist);
        metrics.push(measure(
            "stats/kde_grid_512_n100k",
            "grid-point",
            r(3),
            || black_box(kde.grid(512)).len() as u64,
        ));
    }
    // Exact-path reference at a size the binned path normally handles —
    // the denominator of the binned speedup.
    if want("stats/kde_grid_exact_512_n10k") {
        let exact_ref = EmpiricalDist::new(&trimodal_samples(10_000));
        let kde_exact = Kde::new(&exact_ref);
        metrics.push(measure(
            "stats/kde_grid_exact_512_n10k",
            "grid-point",
            r(3),
            || black_box(kde_exact.grid_exact(512)).len() as u64,
        ));
    }
    if want("stats/bootstrap_median_200x_n10k") {
        let small = EmpiricalDist::new(&trimodal_samples(10_000));
        metrics.push(measure(
            "stats/bootstrap_median_200x_n10k",
            "resample",
            r(3),
            || {
                black_box(median_ci(&small, 200, 0.95, 42));
                200
            },
        ));
    }

    // The columnar sketch kernel in isolation: 1M durations through
    // `QuantileSketch::add_block` with a prebuilt bin table — the
    // per-sample floor of the batched binning (no log2, no dispatch).
    if want("ingest/sketch_block_1m") {
        use pio_des::hist::{BinTable, LogBins};
        use pio_ingest::QuantileSketch;
        let durs: Vec<f64> = (0..1_000_000)
            .map(|i| {
                if i % 97 == 0 {
                    5.0 + (i % 13) as f64
                } else {
                    0.01 + (i % 31) as f64 * 0.002
                }
            })
            .collect();
        let table = BinTable::new(LogBins::new(1e-6, 1e3, 96));
        metrics.push(measure("ingest/sketch_block_1m", "sample", r(3), || {
            let mut s = QuantileSketch::new(1e-6, 1e3, 96);
            s.add_block(&durs, &table);
            black_box(s.count());
            durs.len() as u64
        }));
    }

    // Trace-plane parse throughput: the same 1M-record trace through
    // the serde baseline, the fast JSONL scanner, and the binary ptb /
    // ptb2 block decoders. The trace itself is dropped before timing so
    // only the serialized bytes stay resident.
    let parse_metrics = [
        "ingest/parse_jsonl_serde_1m",
        "ingest/parse_jsonl_1m",
        "ingest/parse_ptb_1m",
        "ingest/parse_ptb2_1m",
    ];
    let size_metrics = ["size/jsonl_1m", "size/ptb_1m", "size/ptb2_1m"];
    if parse_metrics.iter().chain(&size_metrics).any(|n| want(n)) {
        let (jsonl_bytes, ptb_bytes, ptb2_bytes) = {
            let trace = ingest_trace(1_000_000);
            let mut jsonl = Vec::new();
            pio_trace::io::write_jsonl(&trace, &mut jsonl).expect("jsonl encode");
            let mut ptb = Vec::new();
            pio_trace::ptb::write_ptb(&trace, &mut ptb).expect("ptb encode");
            let mut ptb2 = Vec::new();
            pio_trace::ptb2::write_ptb2(&trace, &mut ptb2).expect("ptb2 encode");
            (jsonl, ptb, ptb2)
        };
        let n_records = 1_000_000u64;
        let size = |name: &str, bytes: &[u8]| SizeMetric {
            name: name.to_string(),
            bytes: bytes.len() as u64,
            records: n_records,
            bytes_per_record: bytes.len() as f64 / n_records as f64,
            ratio_vs_ptb: ptb_bytes.len() as f64 / bytes.len() as f64,
        };
        for (name, bytes) in [
            ("size/jsonl_1m", &jsonl_bytes),
            ("size/ptb_1m", &ptb_bytes),
            ("size/ptb2_1m", &ptb2_bytes),
        ] {
            if want(name) {
                sizes.push(size(name, bytes));
            }
        }
        if want("ingest/parse_jsonl_serde_1m") {
            metrics.push(measure(
                "ingest/parse_jsonl_serde_1m",
                "record",
                r(2),
                || parse_jsonl_serde(&jsonl_bytes),
            ));
        }
        if want("ingest/parse_jsonl_1m") {
            metrics.push(measure("ingest/parse_jsonl_1m", "record", r(2), || {
                let mut sink = NullSink;
                let (meta, n) =
                    pio_ingest::stream_jsonl(std::io::Cursor::new(&jsonl_bytes[..]), &mut sink)
                        .expect("jsonl stream");
                black_box(meta);
                n
            }));
        }
        if want("ingest/parse_ptb_1m") {
            metrics.push(measure("ingest/parse_ptb_1m", "record", r(2), || {
                let mut sink = NullSink;
                let (meta, n) =
                    pio_ingest::stream_ptb(std::io::Cursor::new(&ptb_bytes[..]), &mut sink)
                        .expect("ptb stream");
                black_box(meta);
                n
            }));
        }
        if want("ingest/parse_ptb2_1m") {
            metrics.push(measure("ingest/parse_ptb2_1m", "record", r(2), || {
                let mut sink = NullSink;
                let (meta, n) =
                    pio_ingest::stream_ptb2(std::io::Cursor::new(&ptb2_bytes[..]), &mut sink)
                        .expect("ptb2 stream");
                black_box(meta);
                n
            }));
        }
    }

    // Fleet-service ingest: end-to-end record throughput of the
    // multi-tenant diagnosis service (sketches + diagnoser + budgets).
    if want("fleetd/ingest_8x50k_pool4") || want("fleetd/pipeline_serial_8x50k") {
        let fleet_trace = ingest_trace(50_000);
        if want("fleetd/ingest_8x50k_pool4") {
            metrics.push(measure("fleetd/ingest_8x50k_pool4", "record", r(2), || {
                fleetd_ingest(&fleet_trace)
            }));
        }
        if want("fleetd/pipeline_serial_8x50k") {
            metrics.push(measure(
                "fleetd/pipeline_serial_8x50k",
                "record",
                r(2),
                || fleetd_pipeline_serial(&fleet_trace),
            ));
        }
    }

    BenchSummary {
        schema: "pio-bench/summary/v2".to_string(),
        metrics,
        sizes,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Compare `fresh` against `baseline` on the `gates` metric names:
/// returns one human-readable failure line per gate whose `ns_per_op`
/// regressed by more than `tolerance_pct` percent (or was not measured
/// at all). Gates absent from the baseline pass — a metric's first
/// commit has nothing to regress against.
pub fn gate_regressions(
    baseline: &BenchSummary,
    fresh: &BenchSummary,
    gates: &[String],
    tolerance_pct: f64,
) -> Vec<String> {
    let find = |s: &BenchSummary, name: &str| {
        s.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.ns_per_op)
    };
    let mut failures = Vec::new();
    for gate in gates {
        let Some(base) = find(baseline, gate) else {
            continue;
        };
        let Some(new) = find(fresh, gate) else {
            failures.push(format!("{gate}: gated but not measured in this run"));
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let pct = (new - base) / base * 100.0;
        if pct > tolerance_pct {
            failures.push(format!(
                "{gate}: {new:.1} ns/op vs baseline {base:.1} (+{pct:.1}%, tolerance {tolerance_pct:.0}%)"
            ));
        }
    }
    failures
}

/// Peak RSS (VmHWM) from `/proc/self/status`; 0 when unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Render the summary as an aligned human-readable table.
pub fn render(s: &BenchSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>12} {:>14} {:>16}",
        "scenario", "ops", "ns/op", "ops/sec"
    );
    for m in &s.metrics {
        let _ = writeln!(
            out,
            "{:<36} {:>12} {:>14.1} {:>16.0}",
            m.name, m.ops, m.ns_per_op, m.ops_per_sec
        );
    }
    if !s.sizes.is_empty() {
        let _ = writeln!(
            out,
            "{:<36} {:>12} {:>14} {:>16}",
            "encoding", "bytes", "bytes/record", "vs ptb"
        );
        for z in &s.sizes {
            let _ = writeln!(
                out,
                "{:<36} {:>12} {:>14.1} {:>15.2}x",
                z.name, z.bytes, z.bytes_per_record, z.ratio_vs_ptb
            );
        }
    }
    let _ = writeln!(out, "peak RSS: {} kB", s.peak_rss_kb);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_consistent_rates() {
        let m = measure("test/noop", "op", 3, || {
            black_box((0..1000u64).sum::<u64>());
            1000
        });
        assert_eq!(m.ops, 1000);
        assert!(m.wall_ns >= 1);
        assert!((m.ns_per_op - m.wall_ns as f64 / 1000.0).abs() < 1e-9);
        assert!(m.ops_per_sec > 0.0);
    }

    #[test]
    fn filter_restricts_to_matching_prefixes() {
        let s = run_filtered(Some(1), &["des/".to_string()]);
        assert_eq!(s.metrics.len(), 2);
        assert!(s.metrics.iter().all(|m| m.name.starts_with("des/")));
        assert!(s.sizes.is_empty());
        // A full metric name is also a valid prefix.
        let s = run_filtered(Some(1), &["des/event_queue_churn_100k".to_string()]);
        assert_eq!(s.metrics.len(), 1);
        assert_eq!(s.metrics[0].name, "des/event_queue_churn_100k");
    }

    #[test]
    fn gate_flags_regressions_misses_and_new_metrics() {
        let m = |name: &str, ns: f64| Metric {
            name: name.into(),
            unit: "op".into(),
            ops: 1,
            wall_ns: ns as u64,
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
        };
        let summary = |ms: Vec<Metric>| BenchSummary {
            schema: "pio-bench/summary/v2".into(),
            metrics: ms,
            sizes: vec![],
            peak_rss_kb: 0,
        };
        let base = summary(vec![m("a", 100.0), m("b", 100.0)]);
        let gates: Vec<String> = vec!["a".into(), "b".into(), "c".into()];

        // Within tolerance, and "c" absent from the baseline: all pass.
        let ok = summary(vec![m("a", 120.0), m("b", 90.0), m("c", 1.0)]);
        assert!(gate_regressions(&base, &ok, &gates, 25.0).is_empty());

        // "a" regresses past tolerance; "b" gated but not measured.
        let bad = summary(vec![m("a", 130.0)]);
        let failures = gate_regressions(&base, &bad, &gates, 25.0);
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("a:") && failures[0].contains("+30.0%"));
        assert!(failures[1].contains("not measured"));
    }

    #[test]
    fn summary_serializes_with_schema() {
        let s = BenchSummary {
            schema: "pio-bench/summary/v2".into(),
            metrics: vec![measure("a", "op", 1, || 1)],
            sizes: vec![SizeMetric {
                name: "size/x".into(),
                bytes: 450,
                records: 10,
                bytes_per_record: 45.0,
                ratio_vs_ptb: 1.0,
            }],
            peak_rss_kb: peak_rss_kb(),
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("pio-bench/summary/v2"));
        assert!(json.contains("ns_per_op"));
        assert!(json.contains("ratio_vs_ptb"));
        assert!(!render(&s).is_empty());
    }
}
