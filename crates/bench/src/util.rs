//! Shared helpers for the experiment drivers.

use pio_core::empirical::EmpiricalDist;
use pio_fault::{Fault, FaultPlan};
use pio_trace::{CallKind, Trace, TraceFormat};
use std::path::PathBuf;

/// Parse `--scale N` from argv (default `default`). Scale divides task
/// counts and transfer sizes so the full experiments can be smoke-run
/// quickly; scale 1 is the paper's configuration.
///
/// A malformed or missing value after `--scale` is an error, not a
/// silent fall-through to the default: exits with status 2.
pub fn scale_from_args(default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    match parse_scale(&args, default) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: {} [--scale N]", args.first().map_or("bench", |a| a));
            std::process::exit(2);
        }
    }
}

/// The testable core of [`scale_from_args`]: find `--scale N` in `args`.
pub fn parse_scale(args: &[String], default: u32) -> Result<u32, String> {
    let mut scale = default;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--scale" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--scale requires a value".to_string())?;
            let v: u32 = raw.parse().map_err(|_| {
                format!("invalid --scale value {raw:?}: expected a positive integer")
            })?;
            if v == 0 {
                return Err("--scale must be at least 1".to_string());
            }
            scale = v;
        }
    }
    Ok(scale)
}

/// Parse `--shards N` from argv; `None` when the flag is absent (the
/// classic single-loop engine). `Some(n)` routes every run through the
/// sharded parallel engine with `n` worker shards — bit-identical output
/// for any `n`, only wall-clock changes.
///
/// Like [`scale_from_args`], a malformed value is an error (exit 2), as
/// are 0 and absurd counts: silently running un-sharded would fake a
/// speedup measurement.
pub fn shards_from_args() -> Option<u32> {
    let args: Vec<String> = std::env::args().collect();
    match parse_shards(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--shards N]",
                args.first().map_or("bench", |a| a)
            );
            std::process::exit(2);
        }
    }
}

/// The testable core of [`shards_from_args`]: find `--shards N` in
/// `args` (last occurrence wins).
pub fn parse_shards(args: &[String]) -> Result<Option<u32>, String> {
    let mut shards = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--shards" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--shards requires a value".to_string())?;
            let v: u32 = raw.parse().map_err(|_| {
                format!("invalid --shards value {raw:?}: expected a positive integer")
            })?;
            if v == 0 {
                return Err("--shards must be at least 1".to_string());
            }
            if v > 1024 {
                return Err(format!("--shards {v} is absurd; use at most 1024"));
            }
            shards = Some(v);
        }
    }
    Ok(shards)
}

/// Parse `--fault <plan>` from argv; `None` when the flag is absent, so
/// every figure driver can re-run its experiment under a named fault
/// plan without changing its clean-run default.
///
/// Like [`scale_from_args`], a malformed plan name is an error (exit 2),
/// not a silent clean run — a typo must never masquerade as a baseline.
pub fn fault_from_args() -> Option<FaultPlan> {
    let args: Vec<String> = std::env::args().collect();
    match parse_fault(&args) {
        Ok(plan) => plan,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--scale N] [--fault {}]",
                args.first().map_or("bench", |a| a),
                FAULT_PLAN_NAMES.join("|"),
            );
            std::process::exit(2);
        }
    }
}

/// The named plans [`parse_fault`] accepts.
pub const FAULT_PLAN_NAMES: [&str; 5] = [
    "slow-ost",
    "flaky-fabric",
    "mds-stall",
    "straggler",
    "drop-retry",
];

/// The testable core of [`fault_from_args`]: find `--fault <plan>` in
/// `args` (last occurrence wins, matching `--scale`).
pub fn parse_fault(args: &[String]) -> Result<Option<FaultPlan>, String> {
    let mut plan = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--fault" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--fault requires a plan name".to_string())?;
            plan = Some(named_fault_plan(raw)?);
        }
    }
    Ok(plan)
}

/// A named single-fault plan with representative parameters — strong
/// enough that every driver's ensemble shows the fault's shape
/// signature, mild enough that runs still complete at small scales.
pub fn named_fault_plan(name: &str) -> Result<FaultPlan, String> {
    let plan = match name {
        // One OST serving 4x slow: right shoulder + OST imbalance.
        "slow-ost" => FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 4.0,
            ramp_per_s: 0.0,
        }),
        // Duty-cycled fabric collapse: shoulder, OST pool stays balanced.
        "flaky-fabric" => FaultPlan::new().with(Fault::FlakyFabric {
            period_s: 2.0,
            duty: 0.2,
            slowdown: 8.0,
        }),
        // Recurring metadata blackouts: shoulder on the metadata class.
        "mds-stall" => FaultPlan::new().with(Fault::MdsStall {
            period_s: 5.0,
            stall_s: 1.0,
        }),
        // One slow client node: rank-correlated mode split.
        "straggler" => FaultPlan::new().with(Fault::StragglerNode {
            node: 0,
            slowdown: 4.0,
        }),
        // Transient request loss: right-tail mass tracks the drop rate.
        "drop-retry" => FaultPlan::new().with(Fault::DropRetry {
            prob: 0.02,
            timeout_s: 0.5,
            max_retries: 4,
        }),
        other => {
            return Err(format!(
                "unknown --fault plan {other:?}: expected one of {}",
                FAULT_PLAN_NAMES.join(", ")
            ))
        }
    };
    Ok(plan)
}

/// Parse `--format jsonl|ptb|ptb2` from argv; `None` when absent so callers
/// keep their own default (sniffing on input, JSONL on output).
///
/// Like [`scale_from_args`], a malformed format name is an error (exit
/// 2), not a silent fall-through.
pub fn format_from_args() -> Option<TraceFormat> {
    let args: Vec<String> = std::env::args().collect();
    match parse_format(&args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--format jsonl|ptb|ptb2]",
                args.first().map_or("bench", |a| a)
            );
            std::process::exit(2);
        }
    }
}

/// The testable core of [`format_from_args`]: find `--format <name>` in
/// `args` (last occurrence wins, matching `--scale`).
pub fn parse_format(args: &[String]) -> Result<Option<TraceFormat>, String> {
    let mut format = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--format" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--format requires a value".to_string())?;
            format = Some(TraceFormat::from_name(raw).ok_or_else(|| {
                format!("unknown --format {raw:?}: expected jsonl, ptb, or ptb2")
            })?);
        }
    }
    Ok(format)
}

/// Parse `--out <path>` from argv; `None` when the flag is absent. The
/// fault-matrix driver uses it to drop the rendered attribution table
/// where CI can pick it up as a workflow artifact.
pub fn parse_out(args: &[String]) -> Result<Option<PathBuf>, String> {
    let mut out = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--out" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--out requires a path".to_string())?;
            out = Some(PathBuf::from(raw));
        }
    }
    Ok(out)
}

/// Output directory for CSV exports (`results/`, or `$PIO_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var("PIO_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Duration distribution of one call kind, or `None` if absent.
pub fn dist_of(trace: &Trace, kind: CallKind) -> Option<EmpiricalDist> {
    let d = trace.durations_of(kind);
    if d.is_empty() {
        None
    } else {
        Some(EmpiricalDist::new(&d))
    }
}

/// Time from the first record of `kind` starting to the last ending —
/// the "phase time" IOR-style rates are computed over.
pub fn span_of(trace: &Trace, kind: CallKind) -> f64 {
    let start = trace.of_kind(kind).map(|r| r.start_ns).min().unwrap_or(0);
    let end = trace.of_kind(kind).map(|r| r.end_ns).max().unwrap_or(0);
    (end.saturating_sub(start)) as f64 / 1e9
}

/// MB/s over all bytes of `kind` during its span.
pub fn rate_of(trace: &Trace, kind: CallKind) -> f64 {
    let secs = span_of(trace, kind);
    if secs <= 0.0 {
        return 0.0;
    }
    trace.bytes_of(kind) as f64 / 1e6 / secs
}

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label (what the paper reports).
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measurement.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Row {
            label: label.into(),
            paper,
            measured,
            unit,
        }
    }

    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            f64::NAN
        } else {
            self.measured / self.paper
        }
    }
}

/// Print rows as a fixed-width paper-vs-measured table.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<44} {:>12} {:>12} {:>8}",
        "quantity", "paper", "measured", "ratio"
    );
    for r in rows {
        println!(
            "{:<44} {:>9.1} {:>2} {:>9.1} {:>2} {:>7.2}x",
            r.label,
            r.paper,
            r.unit,
            r.measured,
            r.unit,
            r.ratio()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::{Record, TraceMeta};

    #[test]
    fn span_and_rate() {
        let mut t = Trace::new(TraceMeta::default());
        t.push(Record {
            rank: 0,
            call: CallKind::Write,
            fd: 3,
            offset: 0,
            bytes: 10_000_000,
            start_ns: 1_000_000_000,
            end_ns: 2_000_000_000,
            phase: 0,
        });
        t.push(Record {
            rank: 1,
            call: CallKind::Write,
            fd: 3,
            offset: 0,
            bytes: 10_000_000,
            start_ns: 1_500_000_000,
            end_ns: 3_000_000_000,
            phase: 0,
        });
        assert!((span_of(&t, CallKind::Write) - 2.0).abs() < 1e-12);
        assert!((rate_of(&t, CallKind::Write) - 10.0).abs() < 1e-9);
        assert_eq!(rate_of(&t, CallKind::Read), 0.0);
        assert!(dist_of(&t, CallKind::Write).is_some());
        assert!(dist_of(&t, CallKind::Read).is_none());
    }

    #[test]
    fn parse_shards_accepts_valid_and_rejects_malformed() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_shards(&args(&["bench"])), Ok(None));
        assert_eq!(
            parse_shards(&args(&["bench", "--shards", "8"])),
            Ok(Some(8))
        );
        // Last occurrence wins.
        assert_eq!(
            parse_shards(&args(&["bench", "--shards", "2", "--shards", "4"])),
            Ok(Some(4))
        );
        assert!(parse_shards(&args(&["bench", "--shards"])).is_err());
        assert!(parse_shards(&args(&["bench", "--shards", "zero"])).is_err());
        assert!(parse_shards(&args(&["bench", "--shards", "0"])).is_err());
        assert!(parse_shards(&args(&["bench", "--shards", "4096"])).is_err());
    }

    #[test]
    fn parse_scale_accepts_valid_and_rejects_malformed() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_scale(&args(&["bench"]), 16), Ok(16));
        assert_eq!(parse_scale(&args(&["bench", "--scale", "8"]), 16), Ok(8));
        // Last occurrence wins.
        assert_eq!(
            parse_scale(&args(&["bench", "--scale", "8", "--scale", "4"]), 16),
            Ok(4)
        );
        // Malformed values are errors, not silent defaults.
        assert!(parse_scale(&args(&["bench", "--scale"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "abc"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "-3"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "0"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "8x"]), 16).is_err());
    }

    #[test]
    fn parse_out_takes_a_path() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_out(&args(&["bench"])), Ok(None));
        assert_eq!(
            parse_out(&args(&["bench", "--out", "matrix.txt"])),
            Ok(Some(PathBuf::from("matrix.txt")))
        );
        assert!(parse_out(&args(&["bench", "--out"])).is_err());
    }

    #[test]
    fn parse_fault_resolves_named_plans() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_fault(&args(&["bench"])), Ok(None));
        for name in FAULT_PLAN_NAMES {
            let plan = parse_fault(&args(&["bench", "--fault", name]))
                .expect("named plan parses")
                .expect("plan present");
            assert!(!plan.is_empty(), "{name} produced an empty plan");
        }
        // Last occurrence wins, matching --scale.
        let plan = parse_fault(&args(&[
            "bench",
            "--fault",
            "slow-ost",
            "--fault",
            "mds-stall",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(plan, named_fault_plan("mds-stall").unwrap());
        // Malformed input is an error, not a silent clean run.
        assert!(parse_fault(&args(&["bench", "--fault"])).is_err());
        assert!(parse_fault(&args(&["bench", "--fault", "bogus"])).is_err());
    }

    #[test]
    fn parse_format_accepts_valid_and_rejects_malformed() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_format(&args(&["bench"])), Ok(None));
        assert_eq!(
            parse_format(&args(&["bench", "--format", "ptb"])),
            Ok(Some(TraceFormat::Ptb))
        );
        assert_eq!(
            parse_format(&args(&["bench", "--format", "jsonl"])),
            Ok(Some(TraceFormat::Jsonl))
        );
        assert_eq!(
            parse_format(&args(&["bench", "--format", "ptb2"])),
            Ok(Some(TraceFormat::Ptb2))
        );
        // Last occurrence wins, matching --scale.
        assert_eq!(
            parse_format(&args(&["bench", "--format", "ptb", "--format", "jsonl"])),
            Ok(Some(TraceFormat::Jsonl))
        );
        assert!(parse_format(&args(&["bench", "--format"])).is_err());
        assert!(parse_format(&args(&["bench", "--format", "csv"])).is_err());
    }

    #[test]
    fn row_ratio() {
        let r = Row::new("runtime", 100.0, 50.0, "s");
        assert!((r.ratio() - 0.5).abs() < 1e-12);
        assert!(Row::new("x", 0.0, 1.0, "s").ratio().is_nan());
    }
}
