//! Shared helpers for the experiment drivers.

use pio_core::empirical::EmpiricalDist;
use pio_fault::{Fault, FaultPlan, FaultSchedule};
use pio_trace::{CallKind, Trace, TraceFormat};
use std::path::PathBuf;

/// Parse `--scale N` from argv (default `default`). Scale divides task
/// counts and transfer sizes so the full experiments can be smoke-run
/// quickly; scale 1 is the paper's configuration.
///
/// A malformed or missing value after `--scale` is an error, not a
/// silent fall-through to the default: exits with status 2.
pub fn scale_from_args(default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    match parse_scale(&args, default) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: {} [--scale N]", args.first().map_or("bench", |a| a));
            std::process::exit(2);
        }
    }
}

/// The testable core of [`scale_from_args`]: find `--scale N` in `args`.
pub fn parse_scale(args: &[String], default: u32) -> Result<u32, String> {
    let mut scale = default;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--scale" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--scale requires a value".to_string())?;
            let v: u32 = raw.parse().map_err(|_| {
                format!("invalid --scale value {raw:?}: expected a positive integer")
            })?;
            if v == 0 {
                return Err("--scale must be at least 1".to_string());
            }
            scale = v;
        }
    }
    Ok(scale)
}

/// Parse `--shards N` from argv; `None` when the flag is absent (the
/// classic single-loop engine). `Some(n)` routes every run through the
/// sharded parallel engine with `n` worker shards — bit-identical output
/// for any `n`, only wall-clock changes.
///
/// Like [`scale_from_args`], a malformed value is an error (exit 2), as
/// are 0 and absurd counts: silently running un-sharded would fake a
/// speedup measurement.
pub fn shards_from_args() -> Option<u32> {
    let args: Vec<String> = std::env::args().collect();
    match parse_shards(&args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--shards N]",
                args.first().map_or("bench", |a| a)
            );
            std::process::exit(2);
        }
    }
}

/// The testable core of [`shards_from_args`]: find `--shards N` in
/// `args` (last occurrence wins).
pub fn parse_shards(args: &[String]) -> Result<Option<u32>, String> {
    let mut shards = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--shards" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--shards requires a value".to_string())?;
            let v: u32 = raw.parse().map_err(|_| {
                format!("invalid --shards value {raw:?}: expected a positive integer")
            })?;
            if v == 0 {
                return Err("--shards must be at least 1".to_string());
            }
            if v > 1024 {
                return Err(format!("--shards {v} is absurd; use at most 1024"));
            }
            shards = Some(v);
        }
    }
    Ok(shards)
}

/// Parse `--fault <plan>` from argv; `None` when the flag is absent, so
/// every figure driver can re-run its experiment under a named fault
/// plan without changing its clean-run default.
///
/// Like [`scale_from_args`], a malformed plan name is an error (exit 2),
/// not a silent clean run — a typo must never masquerade as a baseline.
pub fn fault_from_args() -> Option<FaultPlan> {
    let args: Vec<String> = std::env::args().collect();
    match parse_fault(&args) {
        Ok(plan) => plan,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--scale N] [--fault {}]",
                args.first().map_or("bench", |a| a),
                FAULT_PLAN_NAMES.join("|"),
            );
            std::process::exit(2);
        }
    }
}

/// The named plans [`parse_fault`] accepts.
pub const FAULT_PLAN_NAMES: [&str; 5] = [
    "slow-ost",
    "flaky-fabric",
    "mds-stall",
    "straggler",
    "drop-retry",
];

/// The testable core of [`fault_from_args`]: find `--fault <plan>` in
/// `args` (last occurrence wins, matching `--scale`).
pub fn parse_fault(args: &[String]) -> Result<Option<FaultPlan>, String> {
    let mut plan = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--fault" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--fault requires a plan name".to_string())?;
            plan = Some(named_fault_plan(raw)?);
        }
    }
    Ok(plan)
}

/// A named single-fault plan with representative parameters — strong
/// enough that every driver's ensemble shows the fault's shape
/// signature, mild enough that runs still complete at small scales.
pub fn named_fault_plan(name: &str) -> Result<FaultPlan, String> {
    let plan = match name {
        // One OST serving 4x slow: right shoulder + OST imbalance.
        "slow-ost" => FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 4.0,
            ramp_per_s: 0.0,
        }),
        // Duty-cycled fabric collapse: shoulder, OST pool stays balanced.
        "flaky-fabric" => FaultPlan::new().with(Fault::FlakyFabric {
            period_s: 2.0,
            duty: 0.2,
            slowdown: 8.0,
        }),
        // Recurring metadata blackouts: shoulder on the metadata class.
        "mds-stall" => FaultPlan::new().with(Fault::MdsStall {
            period_s: 5.0,
            stall_s: 1.0,
        }),
        // One slow client node: rank-correlated mode split.
        "straggler" => FaultPlan::new().with(Fault::StragglerNode {
            node: 0,
            slowdown: 4.0,
        }),
        // Transient request loss: right-tail mass tracks the drop rate.
        "drop-retry" => FaultPlan::new().with(Fault::DropRetry {
            prob: 0.02,
            timeout_s: 0.5,
            max_retries: 4,
        }),
        other => {
            return Err(format!(
                "unknown --fault plan {other:?}: expected one of {}",
                FAULT_PLAN_NAMES.join(", ")
            ))
        }
    };
    Ok(plan)
}

/// Ceiling on concurrently active faults in a `--fault-schedule` spec.
/// The injectors compose any number of envelopes, but a spec stacking
/// more than this many overlapping faults is a typo (or an experiment
/// nobody can interpret), so the parser refuses it.
pub const MAX_SCHEDULED_FAULTS: usize = 8;

/// Parse `--fault-schedule <spec>` from argv; `None` when the flag is
/// absent. The spec is a comma-separated list of scheduled fault
/// entries, each `name[@START..END][~RAMP]`:
///
/// * `name` — one of [`FAULT_PLAN_NAMES`], with the same representative
///   parameters `--fault` uses;
/// * `@START..END` — the live window in simulated seconds (absent =
///   whole run);
/// * `~RAMP` — linear ramp-in length at the head of the window.
///
/// `slow-ost@0..2,flaky-fabric@2..64~1.2` is the corpus's
/// time-disjoint compound plan. Like [`scale_from_args`], a malformed
/// spec is an error (exit 2), never a silent clean run.
pub fn fault_schedule_from_args() -> Option<FaultPlan> {
    let args: Vec<String> = std::env::args().collect();
    match parse_fault_schedule(&args) {
        Ok(plan) => plan,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--fault-schedule name[@START..END][~RAMP],...]  (names: {})",
                args.first().map_or("bench", |a| a),
                FAULT_PLAN_NAMES.join("|"),
            );
            std::process::exit(2);
        }
    }
}

/// The testable core of [`fault_schedule_from_args`]: find
/// `--fault-schedule <spec>` in `args` (last occurrence wins).
pub fn parse_fault_schedule(args: &[String]) -> Result<Option<FaultPlan>, String> {
    let mut plan = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--fault-schedule" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--fault-schedule requires a spec".to_string())?;
            plan = Some(fault_plan_from_spec(raw)?);
        }
    }
    Ok(plan)
}

/// Build a [`FaultPlan`] from a schedule spec string (the
/// `--fault-schedule` grammar). Every entry is validated: unknown fault
/// names, windows that end at or before their start, negative starts or
/// ramps, and plans stacking more than [`MAX_SCHEDULED_FAULTS`]
/// concurrently active faults are all hard errors.
pub fn fault_plan_from_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(format!("empty entry in --fault-schedule spec {spec:?}"));
        }
        let (fault, schedule) = parse_schedule_entry(entry)?;
        plan = plan.with_scheduled(fault, schedule);
    }
    let live = plan.max_concurrent();
    if live > MAX_SCHEDULED_FAULTS {
        return Err(format!(
            "--fault-schedule stacks {live} concurrently active faults; \
             at most {MAX_SCHEDULED_FAULTS} are supported"
        ));
    }
    Ok(plan)
}

/// One `name[@START..END][~RAMP]` entry of the schedule grammar.
fn parse_schedule_entry(entry: &str) -> Result<(Fault, FaultSchedule), String> {
    let (head, ramp_s) = match entry.split_once('~') {
        Some((head, raw)) => {
            let ramp: f64 = raw.parse().map_err(|_| {
                format!("invalid ramp {raw:?} in entry {entry:?}: expected seconds")
            })?;
            (head, ramp)
        }
        None => (entry, 0.0),
    };
    let (name, window) = match head.split_once('@') {
        Some((name, raw)) => {
            let (s, e) = raw.split_once("..").ok_or_else(|| {
                format!("invalid window {raw:?} in entry {entry:?}: expected START..END")
            })?;
            let start: f64 = s.parse().map_err(|_| {
                format!("invalid window start {s:?} in entry {entry:?}: expected seconds")
            })?;
            let end: f64 = e.parse().map_err(|_| {
                format!("invalid window end {e:?} in entry {entry:?}: expected seconds")
            })?;
            (name, Some((start, end)))
        }
        None => (head, None),
    };
    let fault = named_fault_plan(name)?.entries()[0].fault.clone();
    let schedule = match window {
        Some((start, _)) if !start.is_finite() || start < 0.0 => {
            return Err(format!(
                "window start must be finite and >= 0 in entry {entry:?}"
            ));
        }
        // A window that ends at or before its start is invariably a
        // typo: FaultSchedule would accept the (inert) empty window,
        // but nobody schedules a fault to not happen.
        Some((start, end)) if end.is_nan() || end <= start => {
            return Err(format!("window end must be > start in entry {entry:?}"));
        }
        Some((start, end)) => FaultSchedule::window(start, end),
        None => FaultSchedule::ALWAYS,
    };
    if !ramp_s.is_finite() || ramp_s < 0.0 {
        return Err(format!("ramp must be finite and >= 0 in entry {entry:?}"));
    }
    let schedule = schedule.with_ramp(ramp_s);
    schedule
        .validate()
        .map_err(|e| format!("entry {entry:?}: {e}"))?;
    Ok((fault, schedule))
}

/// The combined `--fault` / `--fault-schedule` plan from argv: either
/// flag alone yields its plan, both together merge into one compound
/// plan (the named plan whole-run, the scheduled entries on their
/// windows). `None` when neither flag is present — the clean run.
pub fn fault_or_schedule_from_args() -> Option<FaultPlan> {
    match (fault_from_args(), fault_schedule_from_args()) {
        (Some(named), Some(scheduled)) => Some(named.merged(&scheduled)),
        (named, scheduled) => named.or(scheduled),
    }
}

/// Parse `--format jsonl|ptb|ptb2` from argv; `None` when absent so callers
/// keep their own default (sniffing on input, JSONL on output).
///
/// Like [`scale_from_args`], a malformed format name is an error (exit
/// 2), not a silent fall-through.
pub fn format_from_args() -> Option<TraceFormat> {
    let args: Vec<String> = std::env::args().collect();
    match parse_format(&args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--format jsonl|ptb|ptb2]",
                args.first().map_or("bench", |a| a)
            );
            std::process::exit(2);
        }
    }
}

/// The testable core of [`format_from_args`]: find `--format <name>` in
/// `args` (last occurrence wins, matching `--scale`).
pub fn parse_format(args: &[String]) -> Result<Option<TraceFormat>, String> {
    let mut format = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--format" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "--format requires a value".to_string())?;
            format = Some(TraceFormat::from_name(raw).ok_or_else(|| {
                format!("unknown --format {raw:?}: expected jsonl, ptb, or ptb2")
            })?);
        }
    }
    Ok(format)
}

/// Parse `--out <path>` from argv; `None` when the flag is absent. The
/// fault-matrix driver uses it to drop the rendered attribution table
/// where CI can pick it up as a workflow artifact.
pub fn parse_out(args: &[String]) -> Result<Option<PathBuf>, String> {
    parse_path_flag(args, "--out")
}

/// Last occurrence of an arbitrary `--flag PATH` pair, if present.
pub fn parse_path_flag(args: &[String], flag: &str) -> Result<Option<PathBuf>, String> {
    let mut out = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a path"))?;
            out = Some(PathBuf::from(raw));
        }
    }
    Ok(out)
}

/// Output directory for CSV exports (`results/`, or `$PIO_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var("PIO_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Duration distribution of one call kind, or `None` if absent.
pub fn dist_of(trace: &Trace, kind: CallKind) -> Option<EmpiricalDist> {
    let d = trace.durations_of(kind);
    if d.is_empty() {
        None
    } else {
        Some(EmpiricalDist::new(&d))
    }
}

/// Time from the first record of `kind` starting to the last ending —
/// the "phase time" IOR-style rates are computed over.
pub fn span_of(trace: &Trace, kind: CallKind) -> f64 {
    let start = trace.of_kind(kind).map(|r| r.start_ns).min().unwrap_or(0);
    let end = trace.of_kind(kind).map(|r| r.end_ns).max().unwrap_or(0);
    (end.saturating_sub(start)) as f64 / 1e9
}

/// MB/s over all bytes of `kind` during its span.
pub fn rate_of(trace: &Trace, kind: CallKind) -> f64 {
    let secs = span_of(trace, kind);
    if secs <= 0.0 {
        return 0.0;
    }
    trace.bytes_of(kind) as f64 / 1e6 / secs
}

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label (what the paper reports).
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measurement.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Row {
            label: label.into(),
            paper,
            measured,
            unit,
        }
    }

    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            f64::NAN
        } else {
            self.measured / self.paper
        }
    }
}

/// Print rows as a fixed-width paper-vs-measured table.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<44} {:>12} {:>12} {:>8}",
        "quantity", "paper", "measured", "ratio"
    );
    for r in rows {
        println!(
            "{:<44} {:>9.1} {:>2} {:>9.1} {:>2} {:>7.2}x",
            r.label,
            r.paper,
            r.unit,
            r.measured,
            r.unit,
            r.ratio()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_trace::{Record, TraceMeta};

    #[test]
    fn span_and_rate() {
        let mut t = Trace::new(TraceMeta::default());
        t.push(Record {
            rank: 0,
            call: CallKind::Write,
            fd: 3,
            offset: 0,
            bytes: 10_000_000,
            start_ns: 1_000_000_000,
            end_ns: 2_000_000_000,
            phase: 0,
        });
        t.push(Record {
            rank: 1,
            call: CallKind::Write,
            fd: 3,
            offset: 0,
            bytes: 10_000_000,
            start_ns: 1_500_000_000,
            end_ns: 3_000_000_000,
            phase: 0,
        });
        assert!((span_of(&t, CallKind::Write) - 2.0).abs() < 1e-12);
        assert!((rate_of(&t, CallKind::Write) - 10.0).abs() < 1e-9);
        assert_eq!(rate_of(&t, CallKind::Read), 0.0);
        assert!(dist_of(&t, CallKind::Write).is_some());
        assert!(dist_of(&t, CallKind::Read).is_none());
    }

    #[test]
    fn parse_shards_accepts_valid_and_rejects_malformed() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_shards(&args(&["bench"])), Ok(None));
        assert_eq!(
            parse_shards(&args(&["bench", "--shards", "8"])),
            Ok(Some(8))
        );
        // Last occurrence wins.
        assert_eq!(
            parse_shards(&args(&["bench", "--shards", "2", "--shards", "4"])),
            Ok(Some(4))
        );
        assert!(parse_shards(&args(&["bench", "--shards"])).is_err());
        assert!(parse_shards(&args(&["bench", "--shards", "zero"])).is_err());
        assert!(parse_shards(&args(&["bench", "--shards", "0"])).is_err());
        assert!(parse_shards(&args(&["bench", "--shards", "4096"])).is_err());
    }

    #[test]
    fn parse_scale_accepts_valid_and_rejects_malformed() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_scale(&args(&["bench"]), 16), Ok(16));
        assert_eq!(parse_scale(&args(&["bench", "--scale", "8"]), 16), Ok(8));
        // Last occurrence wins.
        assert_eq!(
            parse_scale(&args(&["bench", "--scale", "8", "--scale", "4"]), 16),
            Ok(4)
        );
        // Malformed values are errors, not silent defaults.
        assert!(parse_scale(&args(&["bench", "--scale"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "abc"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "-3"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "0"]), 16).is_err());
        assert!(parse_scale(&args(&["bench", "--scale", "8x"]), 16).is_err());
    }

    #[test]
    fn parse_out_takes_a_path() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_out(&args(&["bench"])), Ok(None));
        assert_eq!(
            parse_out(&args(&["bench", "--out", "matrix.txt"])),
            Ok(Some(PathBuf::from("matrix.txt")))
        );
        assert!(parse_out(&args(&["bench", "--out"])).is_err());
    }

    #[test]
    fn parse_fault_resolves_named_plans() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_fault(&args(&["bench"])), Ok(None));
        for name in FAULT_PLAN_NAMES {
            let plan = parse_fault(&args(&["bench", "--fault", name]))
                .expect("named plan parses")
                .expect("plan present");
            assert!(!plan.is_empty(), "{name} produced an empty plan");
        }
        // Last occurrence wins, matching --scale.
        let plan = parse_fault(&args(&[
            "bench",
            "--fault",
            "slow-ost",
            "--fault",
            "mds-stall",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(plan, named_fault_plan("mds-stall").unwrap());
        // Malformed input is an error, not a silent clean run.
        assert!(parse_fault(&args(&["bench", "--fault"])).is_err());
        assert!(parse_fault(&args(&["bench", "--fault", "bogus"])).is_err());
    }

    #[test]
    fn parse_fault_schedule_builds_scheduled_plans() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_fault_schedule(&args(&["bench"])), Ok(None));

        // Bare name = the whole-run schedule, same fault as --fault.
        let plan = parse_fault_schedule(&args(&["bench", "--fault-schedule", "slow-ost"]))
            .unwrap()
            .unwrap();
        assert_eq!(plan.entries().len(), 1);
        assert!(plan.entries()[0].schedule.is_always());
        assert_eq!(
            plan.entries()[0].fault,
            named_fault_plan("slow-ost").unwrap().entries()[0].fault
        );

        // Windows, ramps, and composition.
        let plan = fault_plan_from_spec("slow-ost@0..2,flaky-fabric@2..64~1.2").unwrap();
        assert_eq!(plan.entries().len(), 2);
        assert_eq!(plan.entries()[0].schedule, FaultSchedule::window(0.0, 2.0));
        assert_eq!(
            plan.entries()[1].schedule,
            FaultSchedule::window(2.0, 64.0).with_ramp(1.2)
        );
        assert_eq!(plan.max_concurrent(), 1, "time-disjoint windows");

        // Ramp without a window rides the whole-run schedule.
        let plan = fault_plan_from_spec("mds-stall~0.5").unwrap();
        assert_eq!(
            plan.entries()[0].schedule,
            FaultSchedule::ALWAYS.with_ramp(0.5)
        );

        // Last flag occurrence wins, matching --scale.
        let plan = parse_fault_schedule(&args(&[
            "bench",
            "--fault-schedule",
            "slow-ost",
            "--fault-schedule",
            "straggler",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(
            plan.entries()[0].fault,
            named_fault_plan("straggler").unwrap().entries()[0].fault
        );
    }

    #[test]
    fn schedule_spec_rejects_missing_value() {
        let args: Vec<String> = ["bench", "--fault-schedule"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse_fault_schedule(&args).unwrap_err();
        assert!(err.contains("requires a spec"), "{err}");
    }

    #[test]
    fn schedule_spec_rejects_unknown_fault_name() {
        let err = fault_plan_from_spec("bogus@0..2").unwrap_err();
        assert!(err.contains("unknown --fault plan"), "{err}");
    }

    #[test]
    fn schedule_spec_rejects_window_ending_at_or_before_start() {
        for spec in ["slow-ost@2..2", "slow-ost@5..2"] {
            let err = fault_plan_from_spec(spec).unwrap_err();
            assert!(err.contains("window end must be > start"), "{spec}: {err}");
        }
    }

    #[test]
    fn schedule_spec_rejects_negative_start() {
        let err = fault_plan_from_spec("slow-ost@-1..2").unwrap_err();
        assert!(
            err.contains("window start must be finite and >= 0"),
            "{err}"
        );
    }

    #[test]
    fn schedule_spec_rejects_negative_ramp() {
        let err = fault_plan_from_spec("flaky-fabric@0..4~-0.5").unwrap_err();
        assert!(err.contains("ramp must be finite and >= 0"), "{err}");
    }

    #[test]
    fn schedule_spec_rejects_malformed_windows_and_numbers() {
        let err = fault_plan_from_spec("slow-ost@012").unwrap_err();
        assert!(err.contains("expected START..END"), "{err}");
        let err = fault_plan_from_spec("slow-ost@a..2").unwrap_err();
        assert!(err.contains("invalid window start"), "{err}");
        let err = fault_plan_from_spec("slow-ost@0..b").unwrap_err();
        assert!(err.contains("invalid window end"), "{err}");
        let err = fault_plan_from_spec("slow-ost~fast").unwrap_err();
        assert!(err.contains("invalid ramp"), "{err}");
        let err = fault_plan_from_spec("slow-ost,,straggler").unwrap_err();
        assert!(err.contains("empty entry"), "{err}");
    }

    #[test]
    fn schedule_spec_rejects_more_than_eight_concurrent_faults() {
        // Nine whole-run entries all overlap; eight are fine.
        let nine = ["slow-ost"; 9].join(",");
        let err = fault_plan_from_spec(&nine).unwrap_err();
        assert!(err.contains("at most 8 are supported"), "{err}");
        let eight = ["slow-ost"; 8].join(",");
        assert!(fault_plan_from_spec(&eight).is_ok());
        // Nine entries that never overlap in time are fine too: the
        // ceiling is on *concurrency*, not plan length.
        let staggered: Vec<String> = (0..9)
            .map(|i| format!("slow-ost@{}..{}", i, i + 1))
            .collect();
        assert!(fault_plan_from_spec(&staggered.join(",")).is_ok());
    }

    #[test]
    fn parse_format_accepts_valid_and_rejects_malformed() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_format(&args(&["bench"])), Ok(None));
        assert_eq!(
            parse_format(&args(&["bench", "--format", "ptb"])),
            Ok(Some(TraceFormat::Ptb))
        );
        assert_eq!(
            parse_format(&args(&["bench", "--format", "jsonl"])),
            Ok(Some(TraceFormat::Jsonl))
        );
        assert_eq!(
            parse_format(&args(&["bench", "--format", "ptb2"])),
            Ok(Some(TraceFormat::Ptb2))
        );
        // Last occurrence wins, matching --scale.
        assert_eq!(
            parse_format(&args(&["bench", "--format", "ptb", "--format", "jsonl"])),
            Ok(Some(TraceFormat::Jsonl))
        );
        assert!(parse_format(&args(&["bench", "--format"])).is_err());
        assert!(parse_format(&args(&["bench", "--format", "csv"])).is_err());
    }

    #[test]
    fn row_ratio() {
        let r = Row::new("runtime", 100.0, 50.0, "s");
        assert!((r.ratio() - 0.5).abs() < 1e-12);
        assert!(Row::new("x", 0.0, 1.0, "s").ratio().is_nan());
    }
}
