//! End-to-end acceptance for `pio-fault`: every fault class in the
//! fault × workload matrix must show its distinctive ensemble signature,
//! be attributed correctly by the paper's detectors, leave the baseline
//! clean, and reproduce bit-identically per seed — and an absent or
//! empty fault plan must leave traces untouched.

use pio_bench::fault_matrix::{all_pass, empty_plan_is_inert, render, run_matrix};

const SCALE: u32 = 16;
const SEEDS: [u64; 2] = [101, 202];

#[test]
fn every_fault_class_shows_its_signature_on_two_seeds() {
    let cells = run_matrix(SCALE, &SEEDS);
    let classes: std::collections::BTreeSet<_> = cells.iter().map(|c| c.fault).collect();
    assert!(
        classes.len() >= 5,
        "matrix covers only {} fault classes",
        classes.len()
    );
    assert_eq!(cells.len(), classes.len() * SEEDS.len());
    assert!(all_pass(&cells), "matrix failures:\n{}", render(&cells));
}

#[test]
fn no_plan_and_empty_plan_are_bit_identical() {
    assert!(empty_plan_is_inert(SCALE, SEEDS[0]));
}
