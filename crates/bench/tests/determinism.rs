//! Determinism guarantees the performance pass must preserve.
//!
//! The hot-path optimizations (work-stealing ensembles, allocation-free
//! event loop, binned statistics kernels) are only admissible if they
//! keep results bit-identical: ensemble reports must not depend on the
//! worker-thread count or on re-running, with or without fault
//! injection, and the binned KDE fast path must reach the same analysis
//! verdicts as the exact kernel on real workload data.

use pio_bench::util::named_fault_plan;
use pio_core::empirical::EmpiricalDist;
use pio_core::kde::Kde;
use pio_core::modes::{find_modes_on_grid, harmonic_structure};
use pio_core::rates::sec_per_mb_samples;
use pio_fault::FaultPlan;
use pio_mpi::{RunReport, Runner};
use pio_trace::CallKind;
use pio_workloads::presets::{fig1_ior, fig6_gcrm};

/// Run a 5-seed IOR ensemble with `threads` workers.
fn ensemble(threads: usize, fault: Option<FaultPlan>) -> Vec<RunReport> {
    let exp = fig1_ior(1, false, 256);
    let seeds: Vec<u64> = (1..=5).collect();
    let mut runner = Runner::new(&exp.job, exp.run.clone())
        .seeds(&seeds)
        .threads(threads);
    if let Some(plan) = fault {
        runner = runner.fault_plan(plan);
    }
    runner.execute().expect("ensemble")
}

#[test]
fn clean_ensembles_are_bit_identical_across_thread_counts() {
    let serial = ensemble(1, None);
    assert_eq!(serial.len(), 5);
    for threads in [2, 8] {
        let parallel = ensemble(threads, None);
        assert_eq!(serial, parallel, "threads={threads} diverged from serial");
    }
    // And across repeated runs of the same configuration.
    assert_eq!(serial, ensemble(1, None), "serial re-run diverged");
}

#[test]
fn faulted_ensembles_are_bit_identical_across_thread_counts() {
    for name in ["slow-ost", "drop-retry"] {
        let plan = named_fault_plan(name).expect("named plan");
        let serial = ensemble(1, Some(plan.clone()));
        for threads in [2, 8] {
            let parallel = ensemble(threads, Some(plan.clone()));
            assert_eq!(serial, parallel, "{name} threads={threads} diverged");
        }
        assert_eq!(
            serial,
            ensemble(1, Some(plan.clone())),
            "{name} re-run diverged"
        );
    }
}

#[test]
fn binned_kde_reaches_the_same_verdicts_as_exact_on_workload_data() {
    // Real workload samples: per-write sec/MB costs from a GCRM
    // baseline run — the distribution Figure 6's class analysis reads.
    let exp = fig6_gcrm(0, 13, 64);
    let res = Runner::new(&exp.job, exp.run.clone())
        .execute_one()
        .expect("gcrm run");
    let data: Vec<f64> = sec_per_mb_samples(res.trace(), |r| r.call == CallKind::Write);
    let dist = EmpiricalDist::new(&data);
    assert!(
        dist.n() >= 512,
        "fixture must be large enough for the binned path, got {}",
        dist.n()
    );

    // Mirror find_modes' undersmoothed bandwidth, then pick a grid fine
    // enough (dt <= bandwidth) that Kde::grid takes the binned path.
    let bw = (0.5 * Kde::silverman_bandwidth(&dist)).max(f64::MIN_POSITIVE);
    let kde = Kde::with_bandwidth(&dist, bw);
    let span = (dist.max() - dist.min()) + 6.0 * bw;
    // Oversample 4x past the dispatch threshold: linear binning's error
    // is O((dt/bandwidth)^2), so dt = bandwidth/4 keeps the pointwise
    // comparison far below plotting resolution.
    let points = ((4.0 * span / bw).ceil() as usize + 2).clamp(512, 32_768);
    let dt = span / (points - 1) as f64;
    assert!(dt <= bw, "grid must qualify for the binned path");

    let binned = kde.grid(points);
    let exact = kde.grid_exact(points);

    // Pointwise the two densities agree to well under plotting
    // resolution (measured ~0.3% of peak on this fixture)...
    let peak = exact.iter().map(|p| p.1).fold(0.0_f64, f64::max);
    assert!(peak > 0.0);
    for (b, e) in binned.iter().zip(&exact) {
        assert!(
            (b.1 - e.1).abs() <= 5e-3 * peak,
            "density mismatch at t={}: binned {} vs exact {}",
            b.0,
            b.1,
            e.1
        );
    }

    // ...and the derived verdicts — mode count, locations, masses, and
    // the harmonic-structure call — are identical.
    let modes_b = find_modes_on_grid(&binned, 0.08);
    let modes_e = find_modes_on_grid(&exact, 0.08);
    assert_eq!(
        modes_b.len(),
        modes_e.len(),
        "mode count differs: {modes_b:?} vs {modes_e:?}"
    );
    for (b, e) in modes_b.iter().zip(&modes_e) {
        assert!(
            (b.location - e.location).abs() <= 2.0 * dt,
            "mode location drifted: {b:?} vs {e:?}"
        );
        assert!(
            (b.mass - e.mass).abs() <= 0.05,
            "mode mass drifted: {b:?} vs {e:?}"
        );
    }
    assert_eq!(
        harmonic_structure(&modes_b, 0.2).is_some(),
        harmonic_structure(&modes_e, 0.2).is_some(),
        "harmonic verdict differs between binned and exact"
    );
}
