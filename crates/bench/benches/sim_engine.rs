//! Criterion benchmarks for the simulation substrate: event-queue and
//! service-center throughput, plus whole-workload simulation rates
//! (events per second of real time).

use criterion::{criterion_group, criterion_main, Criterion};
use pio_des::{EventQueue, ServiceCenter, SimSpan, SimTime};
use pio_fs::FsConfig;
use pio_mpi::{RunConfig, Runner};
use pio_workloads::{IorConfig, MadbenchConfig};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("des/event_queue_push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.push(SimTime(i * 7919 % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_service_center(c: &mut Criterion) {
    c.bench_function("des/service_center_1m_submits", |b| {
        b.iter(|| {
            let mut sc = ServiceCenter::new();
            let mut t = SimTime::ZERO;
            for i in 0..1_000_000u64 {
                t = sc.submit(t, SimSpan(i % 1000));
            }
            black_box(t)
        })
    });
}

fn bench_ior_simulation(c: &mut Criterion) {
    // 16 tasks × 512 MB × 1 phase ≈ 8k RPC events.
    let cfg = IorConfig {
        repetitions: 1,
        ..IorConfig::paper_fig1().scaled(64)
    };
    let job = cfg.job();
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    group.bench_function("ior_16task_512mb", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Runner::new(
                &job,
                RunConfig::new(FsConfig::franklin().scaled(64), seed, "bench"),
            )
            .execute_one()
            .unwrap()
            .events
        })
    });
    group.finish();
}

fn bench_madbench_simulation(c: &mut Criterion) {
    // 4 tasks, full 300 MB matrices ≈ 40k RPC events.
    let cfg = MadbenchConfig::paper().scaled(64);
    let job = cfg.job();
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.bench_function("madbench_4task", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Runner::new(
                &job,
                RunConfig::new(FsConfig::franklin_patched().scaled(64), seed, "bench"),
            )
            .execute_one()
            .unwrap()
            .events
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_service_center,
    bench_ior_simulation,
    bench_madbench_simulation
);
criterion_main!(benches);
