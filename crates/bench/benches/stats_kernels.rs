//! Criterion microbenchmarks for the ensemble-statistics kernels — the
//! operations a production IPM-I/O reduction would run at scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pio_core::distance::{ks_statistic, wasserstein1};
use pio_core::empirical::EmpiricalDist;
use pio_core::hist::Histogram;
use pio_core::kde::Kde;
use pio_core::lln::GridPdf;
use pio_core::loghist::LogHistogram;
use pio_core::modes::find_modes;
use pio_core::order_stats;
use pio_des::maxmin::{maxmin_rates, Flow};
use std::hint::black_box;

fn samples(n: usize) -> Vec<f64> {
    // Deterministic tri-modal data shaped like an IOR ensemble.
    (0..n)
        .map(|i| {
            let base = match i % 8 {
                0 => 8.0,
                1..=2 => 16.0,
                _ => 32.0,
            };
            base + (i % 97) as f64 * 0.01
        })
        .collect()
}

fn bench_histograms(c: &mut Criterion) {
    let data = samples(100_000);
    c.bench_function("hist/linear_fill_100k", |b| {
        b.iter(|| Histogram::from_samples(black_box(&data), 64))
    });
    c.bench_function("hist/log_fill_100k", |b| {
        b.iter(|| LogHistogram::from_samples(black_box(&data), 64))
    });
}

fn bench_empirical(c: &mut Criterion) {
    let data = samples(100_000);
    c.bench_function("empirical/build_100k", |b| {
        b.iter(|| EmpiricalDist::new(black_box(&data)))
    });
    let d = EmpiricalDist::new(&data);
    c.bench_function("empirical/quantiles_x100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += d.quantile(i as f64 / 100.0);
            }
            black_box(acc)
        })
    });
    c.bench_function("empirical/moments_100k", |b| {
        b.iter(|| (d.mean(), d.variance(), d.skewness(), d.excess_kurtosis()))
    });
}

fn bench_distances(c: &mut Criterion) {
    let a = EmpiricalDist::new(&samples(10_000));
    let b2 = EmpiricalDist::new(&samples(10_000).iter().map(|x| x * 1.01).collect::<Vec<_>>());
    c.bench_function("distance/ks_10k", |b| {
        b.iter(|| ks_statistic(black_box(&a), black_box(&b2)))
    });
    c.bench_function("distance/wasserstein_10k", |b| {
        b.iter(|| wasserstein1(black_box(&a), black_box(&b2)))
    });
}

fn bench_modes_and_order_stats(c: &mut Criterion) {
    let d = EmpiricalDist::new(&samples(5_000));
    c.bench_function("modes/kde_grid_512", |b| {
        let kde = Kde::new(&d);
        b.iter(|| kde.grid(black_box(512)))
    });
    // The same evaluation forced down the exact O(n·points) path — the
    // before/after pair for the linear-binned fast path.
    c.bench_function("modes/kde_grid_exact_512", |b| {
        let kde = Kde::new(&d);
        b.iter(|| kde.grid_exact(black_box(512)))
    });
    c.bench_function("modes/find_modes_5k", |b| {
        b.iter(|| find_modes(black_box(&d), 256, 0.1))
    });
    c.bench_function("order_stats/expected_max_1024", |b| {
        b.iter(|| order_stats::expected_max(black_box(&d), 1024))
    });
}

fn bench_convolution(c: &mut Criterion) {
    let d = EmpiricalDist::new(&samples(5_000));
    c.bench_function("lln/convolve_k8_96bins", |b| {
        b.iter_batched(
            || GridPdf::from_empirical(&d, 96),
            |g| g.convolve_k(8),
            BatchSize::SmallInput,
        )
    });
}

fn bench_maxmin(c: &mut Criterion) {
    // 64 links, 512 flows crossing 3 links each.
    let caps: Vec<f64> = (0..64).map(|i| 10.0 + (i % 7) as f64).collect();
    let flows: Vec<Flow> = (0..512)
        .map(|i| Flow::over(vec![i % 64, (i * 7) % 64, (i * 13) % 64]))
        .collect();
    c.bench_function("maxmin/512flows_64links", |b| {
        b.iter(|| maxmin_rates(black_box(&caps), black_box(&flows)))
    });
}

criterion_group!(
    benches,
    bench_histograms,
    bench_empirical,
    bench_distances,
    bench_modes_and_order_stats,
    bench_convolution,
    bench_maxmin
);
criterion_main!(benches);
