//! Criterion benchmarks regenerating each figure of the paper at reduced
//! scale — one bench per table/figure, so `cargo bench` exercises every
//! experiment path (the full-scale numbers come from the `figN_*`
//! binaries and `all_experiments`).

use criterion::{criterion_group, criterion_main, Criterion};
use pio_bench::{fig1, fig2, fig4, fig5, fig6};
use pio_fs::FsConfig;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_ior_scale64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig1::run(64, seed).runtime_s)
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_lln_sweep_scale64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig2::run(64, seed).len())
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_madbench_franklin_scale64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig4::run(FsConfig::franklin(), 64, seed).runtime_s)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_patch_comparison_scale64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig5::run(64, seed).speedup)
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_gcrm_ladder_scale256", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig6::run_all(256, seed).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(benches);
