//! Criterion benchmarks for the streaming-ingest pipeline: streaming vs
//! batch analysis throughput, and snapshot merge scaling with shard
//! count.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pio_core::diagnosis::{diagnose_with, Thresholds};
use pio_ingest::pipeline::{IngestConfig, IngestPipeline, OverflowPolicy};
use pio_ingest::shard::{EnsembleSnapshot, ShardKey, ShardStats, SmallWriteAgg};
use pio_ingest::sketch::HeavyHitters;
use pio_ingest::{DiagnoserConfig, StreamDiagnoser};
use pio_trace::{CallKind, Record, RecordSink, Trace, TraceMeta};
use std::collections::HashMap;
use std::hint::black_box;

/// A deterministic MADbench-shaped record stream: phased reads/writes
/// with a slow right-shoulder tail.
fn records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let call = match i % 4 {
                0 | 1 => CallKind::Read,
                2 => CallKind::Write,
                _ => CallKind::MetaWrite,
            };
            let dur = if i % 97 == 0 {
                5.0 + (i % 13) as f64
            } else {
                0.01 + (i % 31) as f64 * 0.002
            };
            Record {
                rank: (i % 64) as u32,
                call,
                fd: 3,
                offset: (i as u64) << 20,
                bytes: 1 << 20,
                start_ns: i as u64 * 1000,
                end_ns: i as u64 * 1000 + (dur * 1e9) as u64,
                phase: (i / (n / 8).max(1)) as u32,
            }
        })
        .collect()
}

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let recs = records(50_000);
    let meta = TraceMeta {
        experiment: "bench".into(),
        platform: "synthetic".into(),
        ranks: 64,
        seed: 0,
    };
    let mut group = c.benchmark_group("ingest/50k_records");
    group.bench_function("batch_trace_then_diagnose", |b| {
        b.iter(|| {
            let mut trace = Trace::new(meta.clone());
            for r in black_box(&recs) {
                trace.push(r.clone());
            }
            black_box(diagnose_with(&trace, &Thresholds::default()))
        })
    });
    group.bench_function("stream_diagnoser", |b| {
        b.iter(|| {
            let mut d = StreamDiagnoser::new(DiagnoserConfig::default());
            for r in black_box(&recs) {
                d.push(r);
            }
            d.finish();
            black_box(d.findings().len())
        })
    });
    for workers in [1usize, 4] {
        group.bench_function(&format!("pipeline_{workers}w"), |b| {
            b.iter(|| {
                let pipeline = IngestPipeline::new(IngestConfig {
                    workers,
                    policy: OverflowPolicy::Block,
                    ..IngestConfig::default()
                });
                let mut sink = pipeline.sink();
                for r in black_box(&recs) {
                    sink.push(r);
                }
                drop(sink);
                black_box(pipeline.finish().ingested)
            })
        });
    }
    group.finish();
}

/// Pre-build `shards` worker maps, each covering the same key space, for
/// the snapshot-merge scaling measurement.
fn shard_maps(shards: usize) -> Vec<HashMap<ShardKey, ShardStats>> {
    let recs = records(4096);
    (0..shards)
        .map(|w| {
            let mut map: HashMap<ShardKey, ShardStats> = HashMap::new();
            for r in recs.iter().skip(w).step_by(shards) {
                let key = ShardKey {
                    kind: r.call,
                    group: r.rank % 8,
                    phase: r.phase,
                };
                map.entry(key)
                    .or_insert_with(|| ShardStats::new(1e-6, 1e3, 96))
                    .accumulate(r);
            }
            map
        })
        .collect()
}

/// Parse throughput of the trace readers over the same records: the
/// serde_json-per-line baseline, the hand-rolled JSONL fast path, and
/// the binary ptb / ptb2 block readers.
fn bench_parse_formats(c: &mut Criterion) {
    let meta = TraceMeta {
        experiment: "bench".into(),
        platform: "synthetic".into(),
        ranks: 64,
        seed: 0,
    };
    let mut trace = Trace::new(meta);
    for r in records(50_000) {
        trace.push(r);
    }
    let mut jsonl = Vec::new();
    pio_trace::io::write_jsonl(&trace, &mut jsonl).unwrap();
    let mut ptb = Vec::new();
    pio_trace::ptb::write_ptb(&trace, &mut ptb).unwrap();
    let mut ptb2 = Vec::new();
    pio_trace::ptb2::write_ptb2(&trace, &mut ptb2).unwrap();

    let mut group = c.benchmark_group("ingest/parse_50k");
    group.bench_function("jsonl_serde_baseline", |b| {
        b.iter(|| {
            use std::io::BufRead;
            let mut n = 0u64;
            for line in black_box(&jsonl[..]).lines().skip(1) {
                let rec: Record = serde_json::from_str(&line.unwrap()).unwrap();
                black_box(&rec);
                n += 1;
            }
            n
        })
    });
    group.bench_function("jsonl_fast", |b| {
        b.iter(|| {
            let mut sink = pio_trace::NullSink;
            pio_ingest::stream_jsonl(std::io::Cursor::new(black_box(&jsonl[..])), &mut sink)
                .unwrap()
                .1
        })
    });
    group.bench_function("ptb", |b| {
        b.iter(|| {
            let mut sink = pio_trace::NullSink;
            pio_ingest::stream_ptb(std::io::Cursor::new(black_box(&ptb[..])), &mut sink)
                .unwrap()
                .1
        })
    });
    group.bench_function("ptb2", |b| {
        b.iter(|| {
            let mut sink = pio_trace::NullSink;
            pio_ingest::stream_ptb2(std::io::Cursor::new(black_box(&ptb2[..])), &mut sink)
                .unwrap()
                .1
        })
    });
    group.finish();
}

fn bench_merge_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/snapshot_merge");
    for shards in [1usize, 2, 4, 8, 16] {
        let maps = shard_maps(shards);
        group.bench_function(&format!("{shards}_shards"), |b| {
            b.iter_batched(
                || maps.clone(),
                |maps| {
                    let shards = maps.len();
                    black_box(EnsembleSnapshot::assemble(
                        maps,
                        HeavyHitters::new(16),
                        0.0,
                        0.0,
                        64,
                        4096,
                        0,
                        vec![HashMap::new(); shards],
                        SmallWriteAgg::new(16),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_batch,
    bench_parse_formats,
    bench_merge_scaling
);
criterion_main!(benches);
