//! The per-rank H5Part-style writer: compiles `open → write records →
//! close` into the op stream, emitting the metadata traffic the GCRM
//! study measures.

use crate::layout::H5Layout;
use pio_mpi::program::{Op, Program};

/// When middleware metadata reaches the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataPolicy {
    /// Every metadata transaction is written immediately (HDF5 default —
    /// the "serialized metadata operations on task 0" of Figure 6(g)).
    PerOperation,
    /// Metadata accumulates in the cache and is written at close in
    /// aggregated chunks of the given size (the paper's final
    /// optimization: "aggregates the metadata writes from many <3KB
    /// writes into a single 1 MB write that is deferred until file
    /// close").
    DeferredAggregated {
        /// Aggregated write size (1 MiB in the paper).
        write_bytes: u64,
    },
}

/// Middleware configuration.
#[derive(Debug, Clone, Copy)]
pub struct H5Config {
    /// Size of one metadata transaction (<3 KB in the paper's traces).
    pub meta_write_bytes: u64,
    /// Metadata transactions rank 0 performs per dataset, as a fraction
    /// of the rank count (object headers + B-tree nodes scale with the
    /// number of per-rank hyperslabs).
    pub meta_writes_per_rank: f64,
    /// Small metadata reads every rank performs at open.
    pub meta_reads_per_open: u32,
    /// Size of each metadata read.
    pub meta_read_bytes: u64,
    /// Flush policy.
    pub policy: MetadataPolicy,
}

impl Default for H5Config {
    fn default() -> Self {
        H5Config {
            meta_write_bytes: 2048,
            meta_writes_per_rank: 0.2,
            meta_reads_per_open: 2,
            meta_read_bytes: 512,
            policy: MetadataPolicy::PerOperation,
        }
    }
}

/// Per-rank program assembler for one H5Part file.
pub struct H5PartWriter<'a> {
    layout: &'a H5Layout,
    cfg: H5Config,
    rank: u32,
    file: u32,
    ops: Vec<Op>,
    /// Metadata transactions deferred so far (rank 0 only).
    pending_meta: u64,
    /// Metadata sequence number (for header offsets).
    meta_seq: u64,
    open: bool,
}

impl<'a> H5PartWriter<'a> {
    /// A writer for `rank` targeting job-file `file`.
    pub fn new(layout: &'a H5Layout, cfg: H5Config, rank: u32, file: u32) -> Self {
        H5PartWriter {
            layout,
            cfg,
            rank,
            file,
            ops: Vec::new(),
            pending_meta: 0,
            meta_seq: (rank as u64) << 32,
            open: false,
        }
    }

    /// `H5Fopen`: the POSIX open plus superblock/object-header reads.
    pub fn open(&mut self) {
        assert!(!self.open, "double open");
        self.ops.push(Op::Open { file: self.file });
        for i in 0..self.cfg.meta_reads_per_open {
            let off = self.layout.meta_offset(i as u64, self.cfg.meta_read_bytes);
            self.ops.push(Op::MetaRead {
                file: self.file,
                offset: off,
                bytes: self.cfg.meta_read_bytes,
            });
        }
        self.open = true;
    }

    /// Is this rank the metadata writer (HDF5 rank-0 metadata ownership)?
    fn owns_metadata(&self) -> bool {
        self.rank == 0
    }

    /// Number of metadata transactions one dataset costs.
    fn meta_writes_for_dataset(&self) -> u64 {
        ((self.layout.ranks as f64 * self.cfg.meta_writes_per_rank).ceil() as u64).max(1)
    }

    /// Bytes one record write moves: with alignment on, the write is
    /// padded to the slot boundary ("we padded and aligned these writes
    /// to 1MB boundaries"), so it covers whole stripes.
    fn write_bytes(&self, var: usize) -> u64 {
        if self.layout.alignment > 1 {
            self.layout.slot_bytes(var)
        } else {
            self.layout.datasets[var].record_bytes
        }
    }

    /// Write this rank's records of dataset `var` (one `WriteAt` per
    /// record at the layout's offsets).
    pub fn write_own_records(&mut self, var: usize) {
        assert!(self.open, "write before open");
        let d = self.layout.datasets[var];
        for rec in 0..d.records_per_rank {
            let off = self.layout.record_offset(var, self.rank, rec);
            self.ops.push(Op::WriteAt {
                file: self.file,
                offset: off,
                bytes: self.write_bytes(var),
            });
        }
    }

    /// Write records of dataset `var` on behalf of `owner` (collective
    /// buffering: an aggregator writing a member's slots).
    pub fn write_records_for(&mut self, var: usize, owner: u32) {
        assert!(self.open, "write before open");
        let d = self.layout.datasets[var];
        for rec in 0..d.records_per_rank {
            let off = self.layout.record_offset(var, owner, rec);
            self.ops.push(Op::WriteAt {
                file: self.file,
                offset: off,
                bytes: self.write_bytes(var),
            });
        }
    }

    /// Commit dataset `var`'s metadata (rank 0 only; no-ops elsewhere).
    /// Under `PerOperation` this emits the serialized small writes; under
    /// `DeferredAggregated` it only accumulates.
    pub fn commit_dataset_metadata(&mut self, var: usize) {
        let _ = var;
        if !self.owns_metadata() {
            return;
        }
        let n = self.meta_writes_for_dataset();
        match self.cfg.policy {
            MetadataPolicy::PerOperation => {
                for _ in 0..n {
                    let off = self
                        .layout
                        .meta_offset(self.meta_seq, self.cfg.meta_write_bytes);
                    self.meta_seq += 1;
                    self.ops.push(Op::MetaWrite {
                        file: self.file,
                        offset: off,
                        bytes: self.cfg.meta_write_bytes,
                    });
                }
            }
            MetadataPolicy::DeferredAggregated { .. } => {
                self.pending_meta += n * self.cfg.meta_write_bytes;
            }
        }
    }

    /// Synchronize with the other ranks.
    pub fn barrier(&mut self) {
        self.ops.push(Op::Barrier);
    }

    /// Blocking send (collective-buffering stage one).
    pub fn send(&mut self, to: u32, bytes: u64) {
        self.ops.push(Op::Send { to, bytes });
    }

    /// Blocking receive.
    pub fn recv(&mut self, from: u32) {
        self.ops.push(Op::Recv { from });
    }

    /// `H5Fclose`: flush deferred metadata (aggregated), flush data, close.
    pub fn close(&mut self) {
        assert!(self.open, "close before open");
        if let MetadataPolicy::DeferredAggregated { write_bytes } = self.cfg.policy {
            if self.owns_metadata() && self.pending_meta > 0 {
                let mut left = self.pending_meta;
                while left > 0 {
                    let chunk = left.min(write_bytes);
                    let off = self.layout.meta_offset(self.meta_seq, chunk);
                    self.meta_seq += 1;
                    self.ops.push(Op::MetaWrite {
                        file: self.file,
                        offset: off,
                        bytes: chunk,
                    });
                    left -= chunk;
                }
                self.pending_meta = 0;
            }
        }
        self.ops.push(Op::Flush { file: self.file });
        self.ops.push(Op::Close { file: self.file });
        self.open = false;
    }

    /// Finish, yielding the rank's program.
    pub fn finish(self) -> Program {
        assert!(!self.open, "finish with file still open");
        Program { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DatasetSpec;

    const MB: u64 = 1 << 20;

    fn layout(ranks: u32, alignment: u64) -> H5Layout {
        H5Layout::new(
            ranks,
            vec![
                DatasetSpec {
                    records_per_rank: 1,
                    record_bytes: 16 * MB / 10,
                },
                DatasetSpec {
                    records_per_rank: 6,
                    record_bytes: 16 * MB / 10,
                },
            ],
            alignment,
            MB,
        )
    }

    fn count(p: &Program, f: impl Fn(&Op) -> bool) -> usize {
        p.ops.iter().filter(|o| f(o)).count()
    }

    #[test]
    fn basic_flow_produces_expected_ops() {
        let l = layout(8, 0);
        let mut w = H5PartWriter::new(&l, H5Config::default(), 3, 0);
        w.open();
        w.write_own_records(0);
        w.barrier();
        w.write_own_records(1);
        w.barrier();
        w.close();
        let p = w.finish();
        assert_eq!(count(&p, |o| matches!(o, Op::Open { .. })), 1);
        assert_eq!(count(&p, |o| matches!(o, Op::MetaRead { .. })), 2);
        assert_eq!(count(&p, |o| matches!(o, Op::WriteAt { .. })), 7);
        assert_eq!(count(&p, |o| matches!(o, Op::Barrier)), 2);
        assert_eq!(count(&p, |o| matches!(o, Op::Flush { .. })), 1);
        assert_eq!(count(&p, |o| matches!(o, Op::Close { .. })), 1);
        // Rank 3 writes no metadata.
        assert_eq!(count(&p, |o| matches!(o, Op::MetaWrite { .. })), 0);
    }

    #[test]
    fn rank0_emits_per_operation_metadata() {
        let l = layout(8, 0);
        let mut w = H5PartWriter::new(&l, H5Config::default(), 0, 0);
        w.open();
        w.write_own_records(0);
        w.commit_dataset_metadata(0);
        w.close();
        let p = w.finish();
        // ceil(8 ranks × 0.2) = 2 metadata writes per dataset.
        assert_eq!(count(&p, |o| matches!(o, Op::MetaWrite { .. })), 2);
        // Metadata writes are the configured small size.
        for op in &p.ops {
            if let Op::MetaWrite { bytes, .. } = op {
                assert_eq!(*bytes, 2048);
            }
        }
    }

    #[test]
    fn deferred_metadata_aggregates_at_close() {
        let l = layout(1024, 0);
        let cfg = H5Config {
            policy: MetadataPolicy::DeferredAggregated { write_bytes: MB },
            ..H5Config::default()
        };
        let mut w = H5PartWriter::new(&l, cfg, 0, 0);
        w.open();
        for var in 0..2 {
            w.write_own_records(var);
            w.commit_dataset_metadata(var);
        }
        w.close();
        let p = w.finish();
        let metas: Vec<&Op> = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::MetaWrite { .. }))
            .collect();
        // 2 datasets × 205 transactions × 2 KB = 820 KB → one deferred write.
        assert_eq!(metas.len(), 1, "{metas:?}");
        if let Op::MetaWrite { bytes, .. } = metas[0] {
            assert_eq!(*bytes, 2 * 205 * 2048);
        }
        // Deferred metadata precedes the flush.
        let mpos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::MetaWrite { .. }))
            .unwrap();
        let fpos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::Flush { .. }))
            .unwrap();
        assert!(mpos < fpos);
    }

    #[test]
    fn deferred_metadata_splits_large_volumes() {
        let l = layout(1024, 0);
        let cfg = H5Config {
            meta_writes_per_rank: 1.0, // 1024 transactions × 2 KB = 2 MB
            policy: MetadataPolicy::DeferredAggregated { write_bytes: MB },
            ..H5Config::default()
        };
        let mut w = H5PartWriter::new(&l, cfg, 0, 0);
        w.open();
        w.write_own_records(0);
        w.commit_dataset_metadata(0);
        w.close();
        let p = w.finish();
        assert_eq!(
            count(
                &p,
                |o| matches!(o, Op::MetaWrite { bytes, .. } if *bytes == MB)
            ),
            2
        );
    }

    #[test]
    fn aggregator_writes_members_slots() {
        let l = layout(8, 0);
        let mut w = H5PartWriter::new(&l, H5Config::default(), 0, 0);
        w.open();
        w.write_records_for(1, 5);
        w.close();
        let p = w.finish();
        // Offsets are rank 5's.
        let mut expect: Vec<u64> = (0..6).map(|r| l.record_offset(1, 5, r)).collect();
        let mut got: Vec<u64> = p
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::WriteAt { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn nonzero_ranks_never_write_metadata_even_deferred() {
        let l = layout(64, 0);
        let cfg = H5Config {
            policy: MetadataPolicy::DeferredAggregated { write_bytes: MB },
            ..H5Config::default()
        };
        let mut w = H5PartWriter::new(&l, cfg, 7, 0);
        w.open();
        w.write_own_records(0);
        w.commit_dataset_metadata(0);
        w.close();
        let p = w.finish();
        assert_eq!(count(&p, |o| matches!(o, Op::MetaWrite { .. })), 0);
    }

    #[test]
    #[should_panic]
    fn write_before_open_panics() {
        let l = layout(4, 0);
        let mut w = H5PartWriter::new(&l, H5Config::default(), 0, 0);
        w.write_own_records(0);
    }

    #[test]
    #[should_panic]
    fn finish_with_open_file_panics() {
        let l = layout(4, 0);
        let mut w = H5PartWriter::new(&l, H5Config::default(), 0, 0);
        w.open();
        let _ = w.finish();
    }
}
