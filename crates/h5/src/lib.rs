//! # pio-h5 — a miniature HDF5/H5Part-like middleware
//!
//! The GCRM climate code writes its geodesic-grid variables through
//! H5Part, "a simple data scheme and veneer API built on top of the HDF5
//! library". For the paper's purposes the relevant properties of that
//! stack are the *I/O patterns* it generates, not the byte format:
//!
//! * per-variable datasets laid out contiguously in a single shared file,
//!   one fixed-size record per rank (1.6 MB in GCRM);
//! * an **alignment property** that can pad record offsets to stripe
//!   boundaries (HDF5 `H5Pset_alignment` — the paper's second
//!   optimization);
//! * **metadata transactions**: sub-3 KB object-header/B-tree writes,
//!   serialized on rank 0, flushed either per operation (baseline) or
//!   deferred and aggregated into ~1 MiB writes at file close (the
//!   paper's final optimization); plus small metadata reads on open;
//! * **collective buffering**: aggregating records from all ranks to a
//!   small set of I/O ranks before writing (the paper's first
//!   optimization).
//!
//! This crate compiles those patterns into [`pio_mpi::program::Op`]
//! sequences: [`layout`] computes file offsets, [`writer`] is the
//! per-rank H5Part-style API, and [`collective`] the aggregator
//! assignment math.

pub mod collective;
pub mod layout;
pub mod writer;

pub use collective::Aggregation;
pub use layout::{DatasetSpec, H5Layout};
pub use writer::{H5Config, H5PartWriter, MetadataPolicy};
