//! File layout: where datasets, records and metadata live in the shared
//! file.
//!
//! A header region at the front of the file holds the superblock and the
//! metadata (object headers, B-tree nodes); each variable's dataset
//! follows as a contiguous array of `ranks × records_per_rank` records.
//! With a nonzero alignment, every record slot is padded up to the next
//! alignment boundary — trading file size for stripe-exclusive writes.

/// One variable's dataset shape (per time window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Records each rank writes into this dataset.
    pub records_per_rank: u32,
    /// Bytes per record (GCRM: 1.6 MB).
    pub record_bytes: u64,
}

/// Computed layout of an H5Part-like file.
#[derive(Debug, Clone)]
pub struct H5Layout {
    /// Number of writing ranks.
    pub ranks: u32,
    /// The datasets, in file order.
    pub datasets: Vec<DatasetSpec>,
    /// Record alignment (0 or 1 = none).
    pub alignment: u64,
    /// Bytes reserved for the header/metadata region.
    pub header_bytes: u64,
    bases: Vec<u64>,
}

impl H5Layout {
    /// Compute the layout.
    pub fn new(ranks: u32, datasets: Vec<DatasetSpec>, alignment: u64, header_bytes: u64) -> Self {
        assert!(ranks > 0 && !datasets.is_empty());
        let mut bases = Vec::with_capacity(datasets.len());
        let mut at = align_up(header_bytes, alignment);
        for d in &datasets {
            bases.push(at);
            let slot = align_up(d.record_bytes, alignment);
            at += slot * d.records_per_rank as u64 * ranks as u64;
            at = align_up(at, alignment);
        }
        H5Layout {
            ranks,
            datasets,
            alignment,
            header_bytes,
            bases,
        }
    }

    /// Padded slot size of a record of dataset `var`.
    pub fn slot_bytes(&self, var: usize) -> u64 {
        align_up(self.datasets[var].record_bytes, self.alignment)
    }

    /// File offset of record `rec` of `rank` in dataset `var`.
    /// Records are rank-major: all of rank 0's records, then rank 1's …
    /// matching H5Part's per-rank hyperslabs.
    pub fn record_offset(&self, var: usize, rank: u32, rec: u32) -> u64 {
        let d = &self.datasets[var];
        assert!(rank < self.ranks && rec < d.records_per_rank);
        let idx = rank as u64 * d.records_per_rank as u64 + rec as u64;
        self.bases[var] + idx * self.slot_bytes(var)
    }

    /// Base offset of dataset `var`.
    pub fn dataset_base(&self, var: usize) -> u64 {
        self.bases[var]
    }

    /// Total file size.
    pub fn file_bytes(&self) -> u64 {
        let last = self.datasets.len() - 1;
        self.bases[last]
            + self.slot_bytes(last)
                * self.datasets[last].records_per_rank as u64
                * self.ranks as u64
    }

    /// Offset of the `seq`-th metadata transaction within the header
    /// region (wraps — object headers are rewritten in place).
    pub fn meta_offset(&self, seq: u64, meta_bytes: u64) -> u64 {
        if self.header_bytes <= meta_bytes {
            return 0;
        }
        (seq * meta_bytes) % (self.header_bytes - meta_bytes)
    }

    /// Payload bytes written per rank across all datasets (excluding
    /// padding).
    pub fn payload_per_rank(&self) -> u64 {
        self.datasets
            .iter()
            .map(|d| d.record_bytes * d.records_per_rank as u64)
            .sum()
    }
}

/// Round `v` up to a multiple of `align` (identity for `align ≤ 1`).
pub fn align_up(v: u64, align: u64) -> u64 {
    if align <= 1 {
        v
    } else {
        v.div_ceil(align) * align
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn gcrm_datasets() -> Vec<DatasetSpec> {
        let rec = 16 * MB / 10; // 1.6 MiB
        let mut v = vec![
            DatasetSpec {
                records_per_rank: 1,
                record_bytes: rec,
            };
            3
        ];
        v.extend(vec![
            DatasetSpec {
                records_per_rank: 6,
                record_bytes: rec,
            };
            3
        ]);
        v
    }

    #[test]
    fn unaligned_records_pack_tightly() {
        let l = H5Layout::new(4, gcrm_datasets(), 0, MB);
        let rec = 16 * MB / 10;
        assert_eq!(l.slot_bytes(0), rec);
        assert_eq!(l.record_offset(0, 0, 0), MB);
        assert_eq!(l.record_offset(0, 1, 0), MB + rec);
        // Dataset 1 starts right after dataset 0's 4 records.
        assert_eq!(l.dataset_base(1), MB + 4 * rec);
    }

    #[test]
    fn aligned_records_land_on_boundaries() {
        let l = H5Layout::new(4, gcrm_datasets(), MB, MB);
        // 1.6 MB pads to 2 MB slots.
        assert_eq!(l.slot_bytes(0), 2 * MB);
        for var in 0..6 {
            for rank in 0..4 {
                for rec in 0..l.datasets[var].records_per_rank {
                    assert_eq!(l.record_offset(var, rank, rec) % MB, 0);
                }
            }
        }
    }

    #[test]
    fn multi_record_datasets_are_rank_major() {
        let l = H5Layout::new(4, gcrm_datasets(), 0, MB);
        let rec = 16 * MB / 10;
        // Dataset 3 has 6 records per rank.
        let base = l.dataset_base(3);
        assert_eq!(l.record_offset(3, 0, 5), base + 5 * rec);
        assert_eq!(l.record_offset(3, 1, 0), base + 6 * rec);
    }

    #[test]
    fn no_two_records_overlap() {
        for alignment in [0u64, MB] {
            let l = H5Layout::new(3, gcrm_datasets(), alignment, MB);
            let mut extents: Vec<(u64, u64)> = Vec::new();
            for var in 0..l.datasets.len() {
                for rank in 0..3 {
                    for rec in 0..l.datasets[var].records_per_rank {
                        let off = l.record_offset(var, rank, rec);
                        extents.push((off, off + l.datasets[var].record_bytes));
                    }
                }
            }
            extents.sort_unstable();
            for w in extents.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
            }
            // Everything fits in the file and clears the header.
            assert!(extents[0].0 >= MB);
            assert!(extents.last().unwrap().1 <= l.file_bytes());
        }
    }

    #[test]
    fn file_grows_with_alignment() {
        let packed = H5Layout::new(64, gcrm_datasets(), 0, MB);
        let aligned = H5Layout::new(64, gcrm_datasets(), MB, MB);
        assert!(aligned.file_bytes() > packed.file_bytes());
        assert_eq!(packed.payload_per_rank(), aligned.payload_per_rank());
        // GCRM payload: 3×1.6 + 3×6×1.6 = 33.6 MB per rank.
        assert_eq!(packed.payload_per_rank(), 21 * (16 * MB / 10));
    }

    #[test]
    fn meta_offsets_stay_in_header() {
        let l = H5Layout::new(4, gcrm_datasets(), 0, MB);
        for seq in 0..10_000u64 {
            let off = l.meta_offset(seq, 2048);
            assert!(off + 2048 <= MB, "seq {seq} off {off}");
        }
    }

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, MB), 0);
        assert_eq!(align_up(1, MB), MB);
        assert_eq!(align_up(MB, MB), MB);
        assert_eq!(align_up(7, 0), 7);
        assert_eq!(align_up(7, 1), 7);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Records never overlap and all clear the header, for arbitrary
        /// shapes and alignments.
        #[test]
        fn layout_is_collision_free(
            ranks in 1u32..6,
            n_vars in 1usize..4,
            recs in 1u32..4,
            rec_kb in 1u64..2048,
            align_pow in 0u32..21,
        ) {
            let align = if align_pow == 0 { 0 } else { 1u64 << align_pow };
            let datasets = vec![DatasetSpec { records_per_rank: recs, record_bytes: rec_kb << 10 }; n_vars];
            let l = H5Layout::new(ranks, datasets, align, 1 << 20);
            let mut extents = Vec::new();
            for var in 0..n_vars {
                for rank in 0..ranks {
                    for rec in 0..recs {
                        let off = l.record_offset(var, rank, rec);
                        if align > 1 {
                            prop_assert_eq!(off % align, 0);
                        }
                        extents.push((off, off + (rec_kb << 10)));
                    }
                }
            }
            extents.sort_unstable();
            for w in extents.windows(2) {
                prop_assert!(w[0].1 <= w[1].0);
            }
            prop_assert!(extents[0].0 >= 1 << 20);
            prop_assert!(extents.last().unwrap().1 <= l.file_bytes());
        }
    }
}
