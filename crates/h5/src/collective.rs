//! Collective buffering: aggregator assignment.
//!
//! The paper's first GCRM optimization routes all data through a small
//! set of I/O tasks ("as few as 80 tasks can saturate the I/O
//! subsystem"), gaining both the Law-of-Large-Numbers averaging of many
//! writes per task and a contention reduction at the I/O servers. This
//! module owns the rank → aggregator math; the workload uses it to build
//! send/recv + aggregated-write programs.

/// An aggregation plan over `ranks` ranks with `aggregators` I/O tasks.
///
/// ```
/// use pio_h5::Aggregation;
/// let plan = Aggregation::new(10_240, 80); // the paper's GCRM setup
/// assert_eq!(plan.group_size(), 128);
/// assert!(plan.is_aggregator(128));
/// assert_eq!(plan.aggregator_of(200), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregation {
    /// Total ranks.
    pub ranks: u32,
    /// Number of aggregator (I/O) ranks.
    pub aggregators: u32,
}

impl Aggregation {
    /// A plan; `aggregators` is clamped to `[1, ranks]`.
    pub fn new(ranks: u32, aggregators: u32) -> Self {
        assert!(ranks > 0);
        Aggregation {
            ranks,
            aggregators: aggregators.clamp(1, ranks),
        }
    }

    /// Ranks per aggregator (ceiling; the last group may be smaller).
    pub fn group_size(&self) -> u32 {
        self.ranks.div_ceil(self.aggregators)
    }

    /// The aggregator rank serving `rank`. Aggregators are spread evenly
    /// (first rank of each group), so with 10,240 ranks and 80
    /// aggregators they sit 128 apart — one per every 32nd node at 4
    /// tasks/node.
    pub fn aggregator_of(&self, rank: u32) -> u32 {
        assert!(rank < self.ranks);
        (rank / self.group_size()) * self.group_size()
    }

    /// Whether `rank` is an aggregator.
    pub fn is_aggregator(&self, rank: u32) -> bool {
        self.aggregator_of(rank) == rank
    }

    /// The member ranks of aggregator `agg` (including itself).
    pub fn members_of(&self, agg: u32) -> Vec<u32> {
        assert!(self.is_aggregator(agg), "not an aggregator: {agg}");
        let end = (agg + self.group_size()).min(self.ranks);
        (agg..end).collect()
    }

    /// All aggregator ranks.
    pub fn aggregators_list(&self) -> Vec<u32> {
        (0..self.ranks)
            .step_by(self.group_size() as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcrm_shape_80_of_10240() {
        let a = Aggregation::new(10_240, 80);
        assert_eq!(a.group_size(), 128);
        assert_eq!(a.aggregators_list().len(), 80);
        assert!(a.is_aggregator(0));
        assert!(a.is_aggregator(128));
        assert!(!a.is_aggregator(1));
        assert_eq!(a.aggregator_of(127), 0);
        assert_eq!(a.aggregator_of(128), 128);
        assert_eq!(a.members_of(0).len(), 128);
    }

    #[test]
    fn every_rank_has_exactly_one_aggregator() {
        for (ranks, aggs) in [(100u32, 7u32), (64, 64), (10, 1), (33, 4)] {
            let a = Aggregation::new(ranks, aggs);
            let mut seen = vec![false; ranks as usize];
            for agg in a.aggregators_list() {
                for m in a.members_of(agg) {
                    assert!(!seen[m as usize], "rank {m} in two groups");
                    seen[m as usize] = true;
                    assert_eq!(a.aggregator_of(m), agg);
                }
            }
            assert!(seen.iter().all(|&s| s), "uncovered ranks ({ranks},{aggs})");
        }
    }

    #[test]
    fn degenerate_plans() {
        let all = Aggregation::new(16, 16);
        assert!((0..16).all(|r| all.is_aggregator(r)));
        assert_eq!(all.group_size(), 1);
        let one = Aggregation::new(16, 1);
        assert_eq!(one.aggregator_of(15), 0);
        assert_eq!(one.members_of(0).len(), 16);
        // Over-asking clamps.
        let clamped = Aggregation::new(8, 100);
        assert_eq!(clamped.aggregators, 8);
    }

    #[test]
    fn uneven_last_group() {
        let a = Aggregation::new(10, 3);
        // group_size = 4 → groups {0..4},{4..8},{8..10}.
        assert_eq!(a.members_of(0), vec![0, 1, 2, 3]);
        assert_eq!(a.members_of(4), vec![4, 5, 6, 7]);
        assert_eq!(a.members_of(8), vec![8, 9]);
        assert_eq!(a.aggregators_list(), vec![0, 4, 8]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Partition property for arbitrary plans.
        #[test]
        fn plan_partitions_ranks(ranks in 1u32..500, aggs in 1u32..60) {
            let a = Aggregation::new(ranks, aggs);
            let mut count = 0u32;
            for agg in a.aggregators_list() {
                prop_assert!(a.is_aggregator(agg));
                let members = a.members_of(agg);
                prop_assert!(!members.is_empty());
                prop_assert!(members.len() as u32 <= a.group_size());
                count += members.len() as u32;
            }
            prop_assert_eq!(count, ranks);
        }
    }
}
