//! # pio-fault — deterministic fault plans with ensemble-shape signatures
//!
//! The paper's thesis is that I/O pathologies are *diagnosable from the
//! shape of the completion-time ensemble*: harmonic modes, right
//! shoulders, progressive deterioration, serialized ranks. The simulator
//! reproduces the paper's four scripted bugs — this crate opens the
//! space up: it injects *faults the diagnosers were not hand-built for*
//! and lets the test suite assert that each fault class still produces
//! its distinctive, attributable signature.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s, each carried by a
//! [`FaultSchedule`] that gates it in simulated time. Plans are plain
//! data (cloneable, comparable, seed-independent); all randomness lives
//! in the [`PlanInjector`] built per run from `(plan, seed)`, which owns
//! stream-split RNGs so a faulted run perturbs *only* what the plan
//! says — the base simulation draws are untouched, and the same
//! `(plan, seed)` reproduces the same faulted run bit-for-bit.
//!
//! Fault classes and the ensemble signature each one leaves:
//!
//! | Fault                | Mechanism                                   | Signature                          |
//! |----------------------|---------------------------------------------|------------------------------------|
//! | [`Fault::SlowOst`]   | extra service ∝ bytes on one OST            | right shoulder + OST imbalance     |
//! | + `ramp_per_s > 0`   | slowdown grows with virtual time            | per-phase CDF drift (deterioration)|
//! | [`Fault::FlakyFabric`] | duty-cycled link-rate collapse            | right shoulder, *no* OST imbalance |
//! | [`Fault::MdsStall`]  | recurring MDS blackout windows              | shoulder on metadata ops           |
//! | [`Fault::StragglerNode`] | one node's NIC runs slow                | rank-correlated mode split         |
//! | [`Fault::DropRetry`] | timeout + bounded retransmit per RPC        | right-tail mass ≈ drop probability |
//!
//! ## Schedules
//!
//! Production interference arrives in episodes, not steady states: a
//! rebuild starts, a noisy neighbor lands, a link flaps for ten minutes
//! and clears. [`FaultSchedule`] models this as an activation window
//! `[start, end)` in simulated seconds with an optional linear severity
//! ramp at the head. The contract the schedule layer keeps, and that the
//! tests pin bit-for-bit:
//!
//! * **Whole-run ≡ unscheduled.** A schedule covering the entire run
//!   ([`FaultSchedule::ALWAYS`], or any window containing every event
//!   with no ramp in flight) applies a severity weight of exactly `1.0`,
//!   and the injector arithmetic multiplies by that weight in a position
//!   where `× 1.0` is an IEEE-754 identity — the faulted trace is
//!   byte-identical to the unscheduled plan's.
//! * **Outside the window ≡ absent.** When the weight is `0`, the hook
//!   returns early: no span arithmetic and, critically, **no RNG
//!   draws** — an expired, future, or zero-length window is bit-inert,
//!   indistinguishable from the fault not being in the plan at all.
//! * **Severity scales, mechanisms don't.** The weight multiplies the
//!   fault's *excess* (extra service, stall remainder, drop
//!   probability), never its structural parameters (which OST, which
//!   node, the duty-cycle phase), so a ramping fault keeps its
//!   attributable signature from the first event.

use pio_des::{SimRng, SimSpan, SimTime};
use pio_fs::fault::FaultInjector;
use pio_fs::NodeId;

/// One injectable fault. All parameters are deterministic policy; any
/// randomness (drop coin-flips) comes from the injector's own RNG.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// One OST serves slower: every RPC it handles gains
    /// `nominal × (slowdown − 1)` extra service, where `nominal` is the
    /// unperturbed bandwidth-proportional span. With `ramp_per_s > 0`
    /// the excess grows linearly in virtual time — a progressively
    /// degrading target (failing disk, deepening rebuild).
    SlowOst {
        /// Index of the degraded OST.
        ost: usize,
        /// Service-time multiplier at t = 0 (must be ≥ 1).
        slowdown: f64,
        /// Linear growth of the *excess* per virtual second
        /// (0 = constant degradation).
        ramp_per_s: f64,
    },
    /// Fabric link rate collapses intermittently: during the first
    /// `duty` fraction of every `period_s` window, transfers gain
    /// `nominal × (slowdown − 1)` extra fabric service.
    FlakyFabric {
        /// Window length in virtual seconds.
        period_s: f64,
        /// Fraction of each window spent degraded, in `[0, 1]`.
        duty: f64,
        /// Fabric service multiplier while degraded (must be ≥ 1).
        slowdown: f64,
    },
    /// The metadata server blacks out for `stall_s` at the start of
    /// every `period_s` window: operations issued inside a stall are
    /// served only after it ends (failover pause, lock recovery).
    MdsStall {
        /// Window length in virtual seconds.
        period_s: f64,
        /// Stall length at the head of each window (≤ `period_s`).
        stall_s: f64,
    },
    /// One client node's NIC runs slow, stretching every transfer that
    /// node originates by `nominal × (slowdown − 1)`.
    StragglerNode {
        /// The straggling node.
        node: NodeId,
        /// NIC service multiplier (must be ≥ 1).
        slowdown: f64,
    },
    /// Transient request loss: each RPC transmission is dropped with
    /// probability `prob`; every drop costs one `timeout_s` client-side
    /// wait before the retry. At most `max_retries` drops per request,
    /// so completion is always bounded — lost requests surface as
    /// right-tail latency, never deadlock.
    DropRetry {
        /// Per-transmission drop probability in `[0, 1)`.
        prob: f64,
        /// Client retransmit timeout per drop, virtual seconds.
        timeout_s: f64,
        /// Upper bound on consecutive drops of one request.
        max_retries: u32,
    },
}

impl Fault {
    /// Validate parameter ranges; returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Fault::SlowOst {
                slowdown,
                ramp_per_s,
                ..
            } => {
                if slowdown < 1.0 || ramp_per_s < 0.0 {
                    return Err(format!("SlowOst needs slowdown >= 1, ramp >= 0: {self:?}"));
                }
            }
            Fault::FlakyFabric {
                period_s,
                duty,
                slowdown,
            } => {
                if period_s <= 0.0 || !(0.0..=1.0).contains(&duty) || slowdown < 1.0 {
                    return Err(format!(
                        "FlakyFabric needs period > 0, duty in [0,1], slowdown >= 1: {self:?}"
                    ));
                }
            }
            Fault::MdsStall { period_s, stall_s } => {
                if period_s <= 0.0 || stall_s < 0.0 || stall_s > period_s {
                    return Err(format!(
                        "MdsStall needs period > 0 and 0 <= stall <= period: {self:?}"
                    ));
                }
            }
            Fault::StragglerNode { slowdown, .. } => {
                if slowdown < 1.0 {
                    return Err(format!("StragglerNode needs slowdown >= 1: {self:?}"));
                }
            }
            Fault::DropRetry {
                prob, timeout_s, ..
            } => {
                if !(0.0..1.0).contains(&prob) || timeout_s < 0.0 {
                    return Err(format!(
                        "DropRetry needs prob in [0,1) and timeout >= 0: {self:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Activation window for one fault, in simulated seconds.
///
/// The fault is live on `[start_s, end_s)`. With `ramp_s > 0` its
/// severity weight climbs linearly from 0 at `start_s` to 1 at
/// `start_s + ramp_s` (a rebuild deepening, a queue filling); with
/// `ramp_s = 0` it switches on at full severity. Outside the window the
/// weight is exactly 0 and the fault is bit-inert — see
/// [`FaultSchedule::envelope`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSchedule {
    /// Window start, simulated seconds (≥ 0, finite).
    pub start_s: f64,
    /// Window end, simulated seconds, exclusive. `f64::INFINITY` means
    /// the fault never clears. Must be ≥ `start_s` (a zero-length
    /// window is degenerate but legal: it is provably inert).
    pub end_s: f64,
    /// Linear ramp-in length at the head of the window (≥ 0, finite;
    /// 0 = full severity from `start_s`).
    pub ramp_s: f64,
}

impl FaultSchedule {
    /// The whole-run schedule: active from t = 0, never clears, no
    /// ramp. Its envelope is exactly 1 at every instant, so a fault on
    /// this schedule is bit-identical to an unscheduled one.
    pub const ALWAYS: FaultSchedule = FaultSchedule {
        start_s: 0.0,
        end_s: f64::INFINITY,
        ramp_s: 0.0,
    };

    /// A window `[start_s, end_s)` at full severity (no ramp).
    pub fn window(start_s: f64, end_s: f64) -> Self {
        FaultSchedule {
            start_s,
            end_s,
            ramp_s: 0.0,
        }
    }

    /// Builder: set the ramp-in length.
    pub fn with_ramp(mut self, ramp_s: f64) -> Self {
        self.ramp_s = ramp_s;
        self
    }

    /// Validate parameter ranges; returns a description of the problem.
    ///
    /// `end_s == start_s` (a zero-length window) is accepted here — it
    /// is well-defined and inert — but rejected by the CLI spec parser,
    /// where it is invariably a typo.
    pub fn validate(&self) -> Result<(), String> {
        if !self.start_s.is_finite() || self.start_s < 0.0 {
            return Err(format!("schedule start must be finite and >= 0: {self:?}"));
        }
        if self.end_s.is_nan() || self.end_s < self.start_s {
            return Err(format!("schedule end must be >= start: {self:?}"));
        }
        if !self.ramp_s.is_finite() || self.ramp_s < 0.0 {
            return Err(format!("schedule ramp must be finite and >= 0: {self:?}"));
        }
        Ok(())
    }

    /// Severity weight at `at`: 0 outside `[start_s, end_s)`, a linear
    /// climb over the first `ramp_s` seconds, exactly 1 once fully
    /// ramped. The 0 and 1 endpoints are exact (not approximate) —
    /// injector hooks rely on `w == 0` to skip all work and RNG draws,
    /// and on `× 1.0` being an IEEE-754 identity for bit-equality with
    /// the unscheduled fault.
    #[inline]
    pub fn envelope(&self, at: SimTime) -> f64 {
        let t = at.as_secs_f64();
        if t < self.start_s || t >= self.end_s {
            return 0.0;
        }
        if self.ramp_s > 0.0 {
            let w = (t - self.start_s) / self.ramp_s;
            if w < 1.0 {
                return w;
            }
        }
        1.0
    }

    /// Whether this schedule is the whole-run schedule (envelope ≡ 1).
    pub fn is_always(&self) -> bool {
        self.start_s <= 0.0 && self.end_s == f64::INFINITY && self.ramp_s <= 0.0
    }

    /// Whether two windows overlap in time (zero-length windows never
    /// overlap anything).
    pub fn overlaps(&self, other: &FaultSchedule) -> bool {
        self.start_s < other.end_s && other.start_s < self.end_s
    }
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::ALWAYS
    }
}

/// One plan entry: a fault and the window that gates it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// The fault mechanism and its severity parameters.
    pub fault: Fault,
    /// When (in simulated time) the fault is live.
    pub schedule: FaultSchedule,
}

/// A deterministic, seed-reproducible set of faults for one run.
///
/// The plan is pure data; build per-run hooks with
/// [`FaultPlan::fs_injector`] / [`FaultPlan::mpi_injector`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    entries: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a whole-run fault (builder style). Panics on invalid
    /// parameters — a plan is experiment configuration, and a bad one
    /// is a bug at the call site, not a runtime condition.
    pub fn with(self, fault: Fault) -> Self {
        self.with_scheduled(fault, FaultSchedule::ALWAYS)
    }

    /// Add a fault gated by `schedule`. Panics on invalid fault or
    /// schedule parameters, like [`FaultPlan::with`].
    pub fn with_scheduled(mut self, fault: Fault, schedule: FaultSchedule) -> Self {
        if let Err(e) = fault.validate() {
            panic!("invalid fault: {e}");
        }
        if let Err(e) = schedule.validate() {
            panic!("invalid fault: {e}");
        }
        self.entries.push(ScheduledFault { fault, schedule });
        self
    }

    /// The scheduled faults in plan order.
    pub fn entries(&self) -> &[ScheduledFault] {
        &self.entries
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append every entry of `other` (schedules included).
    pub fn merged(mut self, other: &FaultPlan) -> Self {
        self.entries.extend(other.entries.iter().cloned());
        self
    }

    /// Peak number of simultaneously live faults over all time — the
    /// maximum overlap of the entry windows (whole-run entries overlap
    /// everything). Used by spec validation to bound plan complexity.
    pub fn max_concurrent(&self) -> usize {
        // Boundary sweep: +1 at each start, −1 at each finite end.
        let mut bounds: Vec<(f64, i32)> = Vec::with_capacity(self.entries.len() * 2);
        for e in &self.entries {
            if e.schedule.end_s > e.schedule.start_s {
                bounds.push((e.schedule.start_s, 1));
                if e.schedule.end_s.is_finite() {
                    bounds.push((e.schedule.end_s, -1));
                }
            }
        }
        // Ends sort before starts at the same instant (window is
        // half-open, so touching windows do not overlap).
        bounds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let (mut live, mut peak) = (0i32, 0i32);
        for (_, d) in bounds {
            live += d;
            peak = peak.max(live);
        }
        peak as usize
    }

    /// Hooks for the file-system layer of a run with master seed `seed`.
    pub fn fs_injector(&self, seed: u64) -> PlanInjector {
        PlanInjector::from_plan(self, SimRng::stream(seed, 0xFA01))
    }

    /// Hooks for the MPI message layer of the same run — a separate RNG
    /// stream so message-layer draws never perturb file-system draws.
    pub fn mpi_injector(&self, seed: u64) -> PlanInjector {
        PlanInjector::from_plan(self, SimRng::stream(seed, 0xFA02))
    }

    /// Hooks on a caller-chosen `(component, lane)` RNG stream.
    ///
    /// The sharded simulator keys one injector per simulated node so the
    /// stochastic hooks (drop/retry waits) draw from a lane tied to the
    /// node's identity rather than to a global processing order — the
    /// draws are then independent of how nodes are scheduled across
    /// shards. Stateless hooks (slow-OST, fabric windows, MDS stalls) are
    /// pure functions of time and never touch the lane.
    pub fn keyed_injector(&self, seed: u64, component: u64, lane: u64) -> PlanInjector {
        PlanInjector::from_plan(self, SimRng::keyed(seed, component, lane))
    }
}

/// `SlowOst` entry, pre-matched to its hook.
struct SlowOstEntry {
    ost: usize,
    slowdown: f64,
    ramp_per_s: f64,
    sched: FaultSchedule,
}

/// `FlakyFabric` entry, pre-matched to its hook.
struct FabricEntry {
    period_s: f64,
    duty: f64,
    slowdown: f64,
    sched: FaultSchedule,
}

/// `MdsStall` entry, pre-matched to its hook.
struct MdsEntry {
    period_s: f64,
    stall_s: f64,
    sched: FaultSchedule,
}

/// `StragglerNode` entry, pre-matched to its hook.
struct NicEntry {
    node: NodeId,
    slowdown: f64,
    sched: FaultSchedule,
}

/// `DropRetry` entry, pre-matched to its hook.
struct DropEntry {
    prob: f64,
    timeout_s: f64,
    max_retries: u32,
    sched: FaultSchedule,
}

/// Per-run realization of a [`FaultPlan`]: implements the simulator's
/// [`FaultInjector`] hooks, drawing any randomness from its own
/// stream-split RNG (never the simulator's).
///
/// Entries are partitioned by fault class at construction so each hook
/// touches only the faults that can affect it — a plan full of
/// metadata stalls adds nothing to the data path, and a
/// scheduled-but-inactive fault costs one window compare per hook call.
pub struct PlanInjector {
    slow_ost: Vec<SlowOstEntry>,
    fabric: Vec<FabricEntry>,
    mds: Vec<MdsEntry>,
    nic: Vec<NicEntry>,
    drops: Vec<DropEntry>,
    /// Expiry horizons: once simulated time passes a class's horizon,
    /// every window in that class's entry list has closed and the hook
    /// degenerates to one integer compare. `0` for an empty list,
    /// `u64::MAX` when any entry never clears. Horizons are rounded up,
    /// so a pre-horizon call still evaluates the exact envelopes —
    /// the gate is an early-out, never a semantic change.
    slow_ost_until: u64,
    fabric_until: u64,
    mds_until: u64,
    nic_until: u64,
    drops_until: u64,
    rng: SimRng,
}

/// The expiry horizon of a schedule set, in nanoseconds (rounded up).
fn horizon_ns<'e, I: Iterator<Item = &'e FaultSchedule>>(scheds: I) -> u64 {
    scheds
        .map(|s| {
            if s.end_s.is_finite() {
                (s.end_s * 1e9).ceil() as u64
            } else {
                u64::MAX
            }
        })
        .max()
        .unwrap_or(0)
}

/// Excess span for a duty-cycled window fault: is `at` inside the
/// degraded head of its window?
fn in_window(at: SimTime, period_s: f64, frac: f64) -> bool {
    let t = at.as_secs_f64();
    let pos = t - (t / period_s).floor() * period_s;
    pos < period_s * frac
}

impl PlanInjector {
    fn from_plan(plan: &FaultPlan, rng: SimRng) -> Self {
        let mut inj = PlanInjector {
            slow_ost: Vec::new(),
            fabric: Vec::new(),
            mds: Vec::new(),
            nic: Vec::new(),
            drops: Vec::new(),
            slow_ost_until: 0,
            fabric_until: 0,
            mds_until: 0,
            nic_until: 0,
            drops_until: 0,
            rng,
        };
        for e in &plan.entries {
            let sched = e.schedule;
            match e.fault {
                Fault::SlowOst {
                    ost,
                    slowdown,
                    ramp_per_s,
                } => inj.slow_ost.push(SlowOstEntry {
                    ost,
                    slowdown,
                    ramp_per_s,
                    sched,
                }),
                Fault::FlakyFabric {
                    period_s,
                    duty,
                    slowdown,
                } => inj.fabric.push(FabricEntry {
                    period_s,
                    duty,
                    slowdown,
                    sched,
                }),
                Fault::MdsStall { period_s, stall_s } => inj.mds.push(MdsEntry {
                    period_s,
                    stall_s,
                    sched,
                }),
                Fault::StragglerNode { node, slowdown } => {
                    inj.nic.push(NicEntry {
                        node,
                        slowdown,
                        sched,
                    });
                }
                Fault::DropRetry {
                    prob,
                    timeout_s,
                    max_retries,
                } => inj.drops.push(DropEntry {
                    prob,
                    timeout_s,
                    max_retries,
                    sched,
                }),
            }
        }
        inj.slow_ost_until = horizon_ns(inj.slow_ost.iter().map(|e| &e.sched));
        inj.fabric_until = horizon_ns(inj.fabric.iter().map(|e| &e.sched));
        inj.mds_until = horizon_ns(inj.mds.iter().map(|e| &e.sched));
        inj.nic_until = horizon_ns(inj.nic.iter().map(|e| &e.sched));
        inj.drops_until = horizon_ns(inj.drops.iter().map(|e| &e.sched));
        inj
    }

    /// Drop-with-retry delay: geometric number of drops (capped), each
    /// costing one timeout. A fault outside its window draws nothing —
    /// the RNG stream position is exactly what it would be if the entry
    /// were absent from the plan.
    fn drop_delay(&mut self, at: SimTime) -> SimSpan {
        if at.nanos() >= self.drops_until {
            return SimSpan::ZERO;
        }
        let mut total = SimSpan::ZERO;
        for f in &self.drops {
            let w = f.sched.envelope(at);
            if w <= 0.0 {
                continue;
            }
            let prob = f.prob * w;
            let mut drops = 0;
            while drops < f.max_retries && self.rng.bernoulli(prob) {
                drops += 1;
            }
            total += SimSpan::from_secs_f64(drops as f64 * f.timeout_s);
        }
        total
    }
}

impl FaultInjector for PlanInjector {
    fn ost_extra(&mut self, at: SimTime, ost: usize, nominal: SimSpan, _is_read: bool) -> SimSpan {
        if at.nanos() >= self.slow_ost_until {
            return SimSpan::ZERO;
        }
        let mut extra = SimSpan::ZERO;
        for f in &self.slow_ost {
            if f.ost != ost {
                continue;
            }
            let w = f.sched.envelope(at);
            if w <= 0.0 {
                continue;
            }
            let excess = (f.slowdown - 1.0) * (1.0 + f.ramp_per_s * at.as_secs_f64()) * w;
            extra += nominal.scale(excess);
        }
        extra
    }

    fn fabric_extra(&mut self, at: SimTime, nominal: SimSpan) -> SimSpan {
        if at.nanos() >= self.fabric_until {
            return SimSpan::ZERO;
        }
        let mut extra = SimSpan::ZERO;
        for f in &self.fabric {
            let w = f.sched.envelope(at);
            if w <= 0.0 || !in_window(at, f.period_s, f.duty) {
                continue;
            }
            extra += nominal.scale((f.slowdown - 1.0) * w);
        }
        extra
    }

    fn nic_extra(&mut self, at: SimTime, node: NodeId, nominal: SimSpan) -> SimSpan {
        if at.nanos() >= self.nic_until {
            return SimSpan::ZERO;
        }
        let mut extra = SimSpan::ZERO;
        for f in &self.nic {
            if f.node != node {
                continue;
            }
            let w = f.sched.envelope(at);
            if w <= 0.0 {
                continue;
            }
            extra += nominal.scale((f.slowdown - 1.0) * w);
        }
        extra
    }

    fn mds_extra(&mut self, at: SimTime, _nominal: SimSpan) -> SimSpan {
        if at.nanos() >= self.mds_until {
            return SimSpan::ZERO;
        }
        let mut extra = SimSpan::ZERO;
        for f in &self.mds {
            let w = f.sched.envelope(at);
            if w <= 0.0 {
                continue;
            }
            let t = at.as_secs_f64();
            let pos = t - (t / f.period_s).floor() * f.period_s;
            if pos < f.stall_s {
                // Serve only after the stall window ends, scaled by the
                // ramp weight (a half-ramped failover pauses half as
                // long).
                extra += SimSpan::from_secs_f64((f.stall_s - pos) * w);
            }
        }
        extra
    }

    fn rpc_drop_delay(&mut self, at: SimTime) -> SimSpan {
        self.drop_delay(at)
    }

    fn msg_drop_delay(&mut self, at: SimTime) -> SimSpan {
        self.drop_delay(at)
    }

    fn expiry(&self) -> SimTime {
        SimTime(
            self.slow_ost_until
                .max(self.fabric_until)
                .max(self.mds_until)
                .max(self.nic_until)
                .max(self.drops_until),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_equal(a: SimSpan, b: SimSpan) -> bool {
        a == b
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut inj = plan.fs_injector(1);
        let nom = SimSpan::from_secs(1);
        for t in 0..50u64 {
            let at = SimTime::from_secs(t);
            assert!(spans_equal(inj.ost_extra(at, 0, nom, true), SimSpan::ZERO));
            assert!(spans_equal(inj.fabric_extra(at, nom), SimSpan::ZERO));
            assert!(spans_equal(inj.nic_extra(at, 0, nom), SimSpan::ZERO));
            assert!(spans_equal(inj.mds_extra(at, nom), SimSpan::ZERO));
            assert!(spans_equal(inj.rpc_drop_delay(at), SimSpan::ZERO));
        }
    }

    #[test]
    fn slow_ost_hits_only_its_target() {
        let plan = FaultPlan::new().with(Fault::SlowOst {
            ost: 2,
            slowdown: 4.0,
            ramp_per_s: 0.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(2);
        let at = SimTime::from_secs(10);
        assert_eq!(inj.ost_extra(at, 2, nom, true), nom.scale(3.0));
        assert_eq!(inj.ost_extra(at, 1, nom, true), SimSpan::ZERO);
        // Other subsystems untouched.
        assert_eq!(inj.fabric_extra(at, nom), SimSpan::ZERO);
        assert_eq!(inj.mds_extra(at, nom), SimSpan::ZERO);
    }

    #[test]
    fn slow_ost_ramp_grows_with_time() {
        let plan = FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 2.0,
            ramp_per_s: 0.1,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(1);
        let early = inj.ost_extra(SimTime::ZERO, 0, nom, true);
        let late = inj.ost_extra(SimTime::from_secs(100), 0, nom, true);
        assert!(late.as_secs_f64() > early.as_secs_f64() * 5.0);
    }

    #[test]
    fn flaky_fabric_follows_duty_cycle() {
        let plan = FaultPlan::new().with(Fault::FlakyFabric {
            period_s: 10.0,
            duty: 0.3,
            slowdown: 5.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(1);
        // Head of the window: degraded.
        let bad = inj.fabric_extra(SimTime::from_secs_f64(21.0), nom);
        assert_eq!(bad, nom.scale(4.0));
        // Tail of the window: clean.
        let good = inj.fabric_extra(SimTime::from_secs_f64(27.0), nom);
        assert_eq!(good, SimSpan::ZERO);
    }

    #[test]
    fn mds_stall_serves_after_window_end() {
        let plan = FaultPlan::new().with(Fault::MdsStall {
            period_s: 20.0,
            stall_s: 4.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs_f64(0.001);
        // 1 s into the stall: wait the remaining 3 s.
        let d = inj.mds_extra(SimTime::from_secs_f64(41.0), nom);
        assert!((d.as_secs_f64() - 3.0).abs() < 1e-9);
        // Outside the stall: nothing.
        assert_eq!(
            inj.mds_extra(SimTime::from_secs_f64(50.0), nom),
            SimSpan::ZERO
        );
    }

    #[test]
    fn straggler_hits_only_its_node() {
        let plan = FaultPlan::new().with(Fault::StragglerNode {
            node: 3,
            slowdown: 6.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(1);
        assert_eq!(inj.nic_extra(SimTime::ZERO, 3, nom), nom.scale(5.0));
        assert_eq!(inj.nic_extra(SimTime::ZERO, 0, nom), SimSpan::ZERO);
    }

    #[test]
    fn drop_retry_is_bounded_and_seed_reproducible() {
        let plan = FaultPlan::new().with(Fault::DropRetry {
            prob: 0.5,
            timeout_s: 2.0,
            max_retries: 3,
        });
        let draws = |seed: u64| -> Vec<f64> {
            let mut inj = plan.fs_injector(seed);
            (0..200)
                .map(|_| inj.rpc_drop_delay(SimTime::ZERO).as_secs_f64())
                .collect()
        };
        let a = draws(11);
        let b = draws(11);
        let c = draws(12);
        assert_eq!(a, b, "same seed, same drop pattern");
        assert_ne!(a, c, "different seed, different drop pattern");
        // Bounded: at most max_retries × timeout; and with p = 0.5 some
        // request must actually get dropped.
        assert!(a.iter().all(|&d| d <= 3.0 * 2.0 + 1e-9));
        assert!(a.iter().any(|&d| d > 0.0));
    }

    #[test]
    fn fs_and_mpi_injectors_use_independent_streams() {
        let plan = FaultPlan::new().with(Fault::DropRetry {
            prob: 0.4,
            timeout_s: 1.0,
            max_retries: 5,
        });
        let mut fs = plan.fs_injector(9);
        let mut mpi = plan.mpi_injector(9);
        let a: Vec<f64> = (0..100)
            .map(|_| fs.rpc_drop_delay(SimTime::ZERO).as_secs_f64())
            .collect();
        let b: Vec<f64> = (0..100)
            .map(|_| mpi.msg_drop_delay(SimTime::ZERO).as_secs_f64())
            .collect();
        assert_ne!(a, b, "lanes must be decorrelated");
    }

    #[test]
    fn faults_compose_additively() {
        let plan = FaultPlan::new()
            .with(Fault::SlowOst {
                ost: 0,
                slowdown: 2.0,
                ramp_per_s: 0.0,
            })
            .with(Fault::SlowOst {
                ost: 0,
                slowdown: 3.0,
                ramp_per_s: 0.0,
            });
        let mut inj = plan.fs_injector(1);
        let nom = SimSpan::from_secs(1);
        // (2-1) + (3-1) = 3× the nominal span of excess.
        assert_eq!(inj.ost_extra(SimTime::ZERO, 0, nom, false), nom.scale(3.0));
    }

    #[test]
    #[should_panic(expected = "invalid fault")]
    fn invalid_fault_rejected_at_plan_build() {
        let _ = FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 0.5,
            ramp_per_s: 0.0,
        });
    }

    // ---- schedules ----

    /// Every fault class under test, with its distinguishing parameters.
    fn one_of_each() -> Vec<Fault> {
        vec![
            Fault::SlowOst {
                ost: 1,
                slowdown: 3.0,
                ramp_per_s: 0.05,
            },
            Fault::FlakyFabric {
                period_s: 7.0,
                duty: 0.4,
                slowdown: 5.0,
            },
            Fault::MdsStall {
                period_s: 11.0,
                stall_s: 2.0,
            },
            Fault::StragglerNode {
                node: 2,
                slowdown: 4.0,
            },
            Fault::DropRetry {
                prob: 0.3,
                timeout_s: 1.5,
                max_retries: 4,
            },
        ]
    }

    /// Probe every hook at `at` and collect the raw spans, so two
    /// injectors can be compared bit-for-bit (SimSpan is integer ns).
    fn probe(inj: &mut PlanInjector, at: SimTime) -> [SimSpan; 6] {
        let nom = SimSpan::from_secs_f64(0.125);
        [
            inj.ost_extra(at, 1, nom, true),
            inj.fabric_extra(at, nom),
            inj.nic_extra(at, 2, nom),
            inj.mds_extra(at, nom),
            inj.rpc_drop_delay(at),
            inj.msg_drop_delay(at),
        ]
    }

    fn probe_all(mut inj: PlanInjector) -> Vec<[SimSpan; 6]> {
        // Quarter-second grid over 60 s, plus awkward offsets.
        (0..240)
            .map(|q| SimTime::from_secs_f64(q as f64 * 0.25 + 0.001))
            .map(|at| probe(&mut inj, at))
            .collect()
    }

    #[test]
    fn whole_run_schedule_is_bit_identical_to_unscheduled() {
        for fault in one_of_each() {
            let plain = FaultPlan::new().with(fault.clone());
            let always = FaultPlan::new().with_scheduled(fault.clone(), FaultSchedule::ALWAYS);
            // A finite window containing every probed instant, no ramp,
            // must also be exact: the envelope is exactly 1.0 inside.
            let wide = FaultPlan::new().with_scheduled(fault, FaultSchedule::window(0.0, 1e9));
            let a = probe_all(plain.fs_injector(42));
            let b = probe_all(always.fs_injector(42));
            let c = probe_all(wide.fs_injector(42));
            assert_eq!(a, b, "ALWAYS must be bit-identical to unscheduled");
            assert_eq!(a, c, "covering window must be bit-identical to unscheduled");
        }
    }

    #[test]
    fn expired_and_future_and_zero_length_windows_are_inert() {
        let windows = [
            FaultSchedule::window(1e6, 1e7), // far future
            FaultSchedule::window(0.0, 0.0), // zero-length
            FaultSchedule::window(5.0, 5.0), // zero-length, mid-run
        ];
        for sched in windows {
            let mut plan = FaultPlan::new();
            for fault in one_of_each() {
                plan = plan.with_scheduled(fault, sched);
            }
            for spans in probe_all(plan.fs_injector(13)) {
                assert_eq!(spans, [SimSpan::ZERO; 6], "window {sched:?} must be inert");
            }
        }
    }

    #[test]
    fn inactive_drop_fault_consumes_no_rng_draws() {
        // [expired DropRetry, live DropRetry] must draw exactly the
        // same RNG sequence as the live fault alone: the expired entry
        // consumes zero draws, not zero-probability draws.
        let live = Fault::DropRetry {
            prob: 0.5,
            timeout_s: 1.0,
            max_retries: 6,
        };
        let expired = Fault::DropRetry {
            prob: 0.9,
            timeout_s: 9.0,
            max_retries: 8,
        };
        let with_expired = FaultPlan::new()
            .with_scheduled(expired, FaultSchedule::window(1e6, 1e7))
            .with(live.clone());
        let alone = FaultPlan::new().with(live);
        let seq = |plan: &FaultPlan| -> Vec<SimSpan> {
            let mut inj = plan.fs_injector(77);
            (0..300)
                .map(|i| inj.rpc_drop_delay(SimTime::from_secs(i)))
                .collect()
        };
        assert_eq!(seq(&with_expired), seq(&alone));
    }

    #[test]
    fn window_gates_each_fault_class() {
        let sched = FaultSchedule::window(10.0, 20.0);
        for fault in one_of_each() {
            let plan = FaultPlan::new().with_scheduled(fault.clone(), sched);
            let mut inside = plan.fs_injector(3);
            let mut outside = plan.fs_injector(3);
            // Inside the window the fault behaves exactly like the
            // unscheduled fault does at the same instant.
            let mut plain = FaultPlan::new().with(fault).fs_injector(3);
            let at_in = SimTime::from_secs_f64(14.5);
            assert_eq!(probe(&mut inside, at_in), probe(&mut plain, at_in));
            // Outside (before and after) every hook is zero.
            for t in [0.0, 9.999, 20.0, 35.0] {
                let at = SimTime::from_secs_f64(t);
                assert_eq!(probe(&mut outside, at), [SimSpan::ZERO; 6]);
            }
        }
    }

    #[test]
    fn ramp_scales_severity_linearly() {
        let plan = FaultPlan::new().with_scheduled(
            Fault::StragglerNode {
                node: 2,
                slowdown: 5.0,
            },
            FaultSchedule::window(10.0, 100.0).with_ramp(8.0),
        );
        let mut inj = plan.fs_injector(1);
        let nom = SimSpan::from_secs(1);
        // At start: weight 0 (ramp begins at zero severity).
        assert_eq!(inj.nic_extra(SimTime::from_secs(10), 2, nom), SimSpan::ZERO);
        // Halfway up the ramp: half the excess.
        let half = inj.nic_extra(SimTime::from_secs(14), 2, nom);
        assert_eq!(half, nom.scale(4.0 * 0.5));
        // Fully ramped: the whole excess, exactly.
        let full = inj.nic_extra(SimTime::from_secs(30), 2, nom);
        assert_eq!(full, nom.scale(4.0));
    }

    #[test]
    fn half_open_window_boundary_is_exact() {
        let sched = FaultSchedule::window(10.0, 20.0);
        assert_eq!(sched.envelope(SimTime::from_secs_f64(10.0)), 1.0);
        assert_eq!(sched.envelope(SimTime::from_secs_f64(19.999999)), 1.0);
        assert_eq!(sched.envelope(SimTime::from_secs_f64(20.0)), 0.0);
        assert_eq!(sched.envelope(SimTime::from_secs_f64(9.999999)), 0.0);
    }

    #[test]
    fn max_concurrent_counts_peak_overlap() {
        let f = |ost| Fault::SlowOst {
            ost,
            slowdown: 2.0,
            ramp_per_s: 0.0,
        };
        // Two overlapping + one disjoint + one touching (half-open:
        // [0,10) and [10,20) never coexist).
        let plan = FaultPlan::new()
            .with_scheduled(f(0), FaultSchedule::window(0.0, 10.0))
            .with_scheduled(f(1), FaultSchedule::window(5.0, 15.0))
            .with_scheduled(f(2), FaultSchedule::window(10.0, 20.0))
            .with_scheduled(f(3), FaultSchedule::window(40.0, 50.0));
        assert_eq!(plan.max_concurrent(), 2);
        // Whole-run entries overlap everything.
        let plan = plan.with(f(4));
        assert_eq!(plan.max_concurrent(), 3);
        assert_eq!(FaultPlan::new().max_concurrent(), 0);
    }

    #[test]
    fn schedule_validation_rejects_bad_windows() {
        assert!(FaultSchedule::window(5.0, 4.0).validate().is_err());
        assert!(FaultSchedule::window(-1.0, 4.0).validate().is_err());
        assert!(FaultSchedule::window(0.0, 4.0)
            .with_ramp(-0.5)
            .validate()
            .is_err());
        assert!(FaultSchedule::window(f64::NAN, 4.0).validate().is_err());
        // Zero-length is degenerate but legal (and inert).
        assert!(FaultSchedule::window(3.0, 3.0).validate().is_ok());
        assert!(FaultSchedule::ALWAYS.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault")]
    fn invalid_schedule_rejected_at_plan_build() {
        let _ = FaultPlan::new().with_scheduled(
            Fault::StragglerNode {
                node: 0,
                slowdown: 2.0,
            },
            FaultSchedule::window(9.0, 3.0),
        );
    }

    #[test]
    fn merged_concatenates_entries() {
        let a = FaultPlan::new().with(Fault::StragglerNode {
            node: 0,
            slowdown: 2.0,
        });
        let b = FaultPlan::new().with_scheduled(
            Fault::MdsStall {
                period_s: 5.0,
                stall_s: 1.0,
            },
            FaultSchedule::window(2.0, 4.0),
        );
        let m = a.clone().merged(&b);
        assert_eq!(m.entries().len(), 2);
        assert_eq!(m.entries()[0], a.entries()[0]);
        assert_eq!(m.entries()[1], b.entries()[0]);
    }
}
