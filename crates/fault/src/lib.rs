//! # pio-fault — deterministic fault plans with ensemble-shape signatures
//!
//! The paper's thesis is that I/O pathologies are *diagnosable from the
//! shape of the completion-time ensemble*: harmonic modes, right
//! shoulders, progressive deterioration, serialized ranks. The simulator
//! reproduces the paper's four scripted bugs — this crate opens the
//! space up: it injects *faults the diagnosers were not hand-built for*
//! and lets the test suite assert that each fault class still produces
//! its distinctive, attributable signature.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s. Plans are plain data
//! (cloneable, comparable, seed-independent); all randomness lives in
//! the [`PlanInjector`] built per run from `(plan, seed)`, which owns
//! stream-split RNGs so a faulted run perturbs *only* what the plan
//! says — the base simulation draws are untouched, and the same
//! `(plan, seed)` reproduces the same faulted run bit-for-bit.
//!
//! Fault classes and the ensemble signature each one leaves:
//!
//! | Fault                | Mechanism                                   | Signature                          |
//! |----------------------|---------------------------------------------|------------------------------------|
//! | [`Fault::SlowOst`]   | extra service ∝ bytes on one OST            | right shoulder + OST imbalance     |
//! | + `ramp_per_s > 0`   | slowdown grows with virtual time            | per-phase CDF drift (deterioration)|
//! | [`Fault::FlakyFabric`] | duty-cycled link-rate collapse            | right shoulder, *no* OST imbalance |
//! | [`Fault::MdsStall`]  | recurring MDS blackout windows              | shoulder on metadata ops           |
//! | [`Fault::StragglerNode`] | one node's NIC runs slow                | rank-correlated mode split         |
//! | [`Fault::DropRetry`] | timeout + bounded retransmit per RPC        | right-tail mass ≈ drop probability |

use pio_des::{SimRng, SimSpan, SimTime};
use pio_fs::fault::FaultInjector;
use pio_fs::NodeId;

/// One injectable fault. All parameters are deterministic policy; any
/// randomness (drop coin-flips) comes from the injector's own RNG.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// One OST serves slower: every RPC it handles gains
    /// `nominal × (slowdown − 1)` extra service, where `nominal` is the
    /// unperturbed bandwidth-proportional span. With `ramp_per_s > 0`
    /// the excess grows linearly in virtual time — a progressively
    /// degrading target (failing disk, deepening rebuild).
    SlowOst {
        /// Index of the degraded OST.
        ost: usize,
        /// Service-time multiplier at t = 0 (must be ≥ 1).
        slowdown: f64,
        /// Linear growth of the *excess* per virtual second
        /// (0 = constant degradation).
        ramp_per_s: f64,
    },
    /// Fabric link rate collapses intermittently: during the first
    /// `duty` fraction of every `period_s` window, transfers gain
    /// `nominal × (slowdown − 1)` extra fabric service.
    FlakyFabric {
        /// Window length in virtual seconds.
        period_s: f64,
        /// Fraction of each window spent degraded, in `[0, 1]`.
        duty: f64,
        /// Fabric service multiplier while degraded (must be ≥ 1).
        slowdown: f64,
    },
    /// The metadata server blacks out for `stall_s` at the start of
    /// every `period_s` window: operations issued inside a stall are
    /// served only after it ends (failover pause, lock recovery).
    MdsStall {
        /// Window length in virtual seconds.
        period_s: f64,
        /// Stall length at the head of each window (≤ `period_s`).
        stall_s: f64,
    },
    /// One client node's NIC runs slow, stretching every transfer that
    /// node originates by `nominal × (slowdown − 1)`.
    StragglerNode {
        /// The straggling node.
        node: NodeId,
        /// NIC service multiplier (must be ≥ 1).
        slowdown: f64,
    },
    /// Transient request loss: each RPC transmission is dropped with
    /// probability `prob`; every drop costs one `timeout_s` client-side
    /// wait before the retry. At most `max_retries` drops per request,
    /// so completion is always bounded — lost requests surface as
    /// right-tail latency, never deadlock.
    DropRetry {
        /// Per-transmission drop probability in `[0, 1)`.
        prob: f64,
        /// Client retransmit timeout per drop, virtual seconds.
        timeout_s: f64,
        /// Upper bound on consecutive drops of one request.
        max_retries: u32,
    },
}

impl Fault {
    /// Validate parameter ranges; returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Fault::SlowOst {
                slowdown,
                ramp_per_s,
                ..
            } => {
                if slowdown < 1.0 || ramp_per_s < 0.0 {
                    return Err(format!("SlowOst needs slowdown >= 1, ramp >= 0: {self:?}"));
                }
            }
            Fault::FlakyFabric {
                period_s,
                duty,
                slowdown,
            } => {
                if period_s <= 0.0 || !(0.0..=1.0).contains(&duty) || slowdown < 1.0 {
                    return Err(format!(
                        "FlakyFabric needs period > 0, duty in [0,1], slowdown >= 1: {self:?}"
                    ));
                }
            }
            Fault::MdsStall { period_s, stall_s } => {
                if period_s <= 0.0 || stall_s < 0.0 || stall_s > period_s {
                    return Err(format!(
                        "MdsStall needs period > 0 and 0 <= stall <= period: {self:?}"
                    ));
                }
            }
            Fault::StragglerNode { slowdown, .. } => {
                if slowdown < 1.0 {
                    return Err(format!("StragglerNode needs slowdown >= 1: {self:?}"));
                }
            }
            Fault::DropRetry {
                prob, timeout_s, ..
            } => {
                if !(0.0..1.0).contains(&prob) || timeout_s < 0.0 {
                    return Err(format!(
                        "DropRetry needs prob in [0,1) and timeout >= 0: {self:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A deterministic, seed-reproducible set of faults for one run.
///
/// The plan is pure data; build per-run hooks with
/// [`FaultPlan::fs_injector`] / [`FaultPlan::mpi_injector`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault (builder style). Panics on invalid parameters — a
    /// plan is experiment configuration, and a bad one is a bug at the
    /// call site, not a runtime condition.
    pub fn with(mut self, fault: Fault) -> Self {
        if let Err(e) = fault.validate() {
            panic!("invalid fault: {e}");
        }
        self.faults.push(fault);
        self
    }

    /// The faults in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Hooks for the file-system layer of a run with master seed `seed`.
    pub fn fs_injector(&self, seed: u64) -> PlanInjector {
        PlanInjector::new(self.clone(), seed, 0xFA01)
    }

    /// Hooks for the MPI message layer of the same run — a separate RNG
    /// stream so message-layer draws never perturb file-system draws.
    pub fn mpi_injector(&self, seed: u64) -> PlanInjector {
        PlanInjector::new(self.clone(), seed, 0xFA02)
    }

    /// Hooks on a caller-chosen `(component, lane)` RNG stream.
    ///
    /// The sharded simulator keys one injector per simulated node so the
    /// stochastic hooks (drop/retry waits) draw from a lane tied to the
    /// node's identity rather than to a global processing order — the
    /// draws are then independent of how nodes are scheduled across
    /// shards. Stateless hooks (slow-OST, fabric windows, MDS stalls) are
    /// pure functions of time and never touch the lane.
    pub fn keyed_injector(&self, seed: u64, component: u64, lane: u64) -> PlanInjector {
        PlanInjector {
            plan: self.clone(),
            rng: SimRng::keyed(seed, component, lane),
        }
    }
}

/// Per-run realization of a [`FaultPlan`]: implements the simulator's
/// [`FaultInjector`] hooks, drawing any randomness from its own
/// stream-split RNG (never the simulator's).
pub struct PlanInjector {
    plan: FaultPlan,
    rng: SimRng,
}

/// Excess span for a duty-cycled window fault: is `at` inside the
/// degraded head of its window?
fn in_window(at: SimTime, period_s: f64, frac: f64) -> bool {
    let t = at.as_secs_f64();
    let pos = t - (t / period_s).floor() * period_s;
    pos < period_s * frac
}

impl PlanInjector {
    fn new(plan: FaultPlan, seed: u64, lane: u64) -> Self {
        PlanInjector {
            plan,
            rng: SimRng::stream(seed, lane),
        }
    }

    /// Drop-with-retry delay: geometric number of drops (capped), each
    /// costing one timeout.
    fn drop_delay(&mut self) -> SimSpan {
        let mut total = SimSpan::ZERO;
        for fault in &self.plan.faults {
            if let Fault::DropRetry {
                prob,
                timeout_s,
                max_retries,
            } = *fault
            {
                let mut drops = 0;
                while drops < max_retries && self.rng.bernoulli(prob) {
                    drops += 1;
                }
                total += SimSpan::from_secs_f64(drops as f64 * timeout_s);
            }
        }
        total
    }
}

impl FaultInjector for PlanInjector {
    fn ost_extra(&mut self, at: SimTime, ost: usize, nominal: SimSpan, _is_read: bool) -> SimSpan {
        let mut extra = SimSpan::ZERO;
        for fault in &self.plan.faults {
            if let Fault::SlowOst {
                ost: target,
                slowdown,
                ramp_per_s,
            } = *fault
            {
                if ost == target {
                    let excess = (slowdown - 1.0) * (1.0 + ramp_per_s * at.as_secs_f64());
                    extra += nominal.scale(excess);
                }
            }
        }
        extra
    }

    fn fabric_extra(&mut self, at: SimTime, nominal: SimSpan) -> SimSpan {
        let mut extra = SimSpan::ZERO;
        for fault in &self.plan.faults {
            if let Fault::FlakyFabric {
                period_s,
                duty,
                slowdown,
            } = *fault
            {
                if in_window(at, period_s, duty) {
                    extra += nominal.scale(slowdown - 1.0);
                }
            }
        }
        extra
    }

    fn nic_extra(&mut self, _at: SimTime, node: NodeId, nominal: SimSpan) -> SimSpan {
        let mut extra = SimSpan::ZERO;
        for fault in &self.plan.faults {
            if let Fault::StragglerNode {
                node: target,
                slowdown,
            } = *fault
            {
                if node == target {
                    extra += nominal.scale(slowdown - 1.0);
                }
            }
        }
        extra
    }

    fn mds_extra(&mut self, at: SimTime, _nominal: SimSpan) -> SimSpan {
        let mut extra = SimSpan::ZERO;
        for fault in &self.plan.faults {
            if let Fault::MdsStall { period_s, stall_s } = *fault {
                let t = at.as_secs_f64();
                let pos = t - (t / period_s).floor() * period_s;
                if pos < stall_s {
                    // Serve only after the stall window ends.
                    extra += SimSpan::from_secs_f64(stall_s - pos);
                }
            }
        }
        extra
    }

    fn rpc_drop_delay(&mut self, _at: SimTime) -> SimSpan {
        self.drop_delay()
    }

    fn msg_drop_delay(&mut self, _at: SimTime) -> SimSpan {
        self.drop_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_equal(a: SimSpan, b: SimSpan) -> bool {
        a == b
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut inj = plan.fs_injector(1);
        let nom = SimSpan::from_secs(1);
        for t in 0..50u64 {
            let at = SimTime::from_secs(t);
            assert!(spans_equal(inj.ost_extra(at, 0, nom, true), SimSpan::ZERO));
            assert!(spans_equal(inj.fabric_extra(at, nom), SimSpan::ZERO));
            assert!(spans_equal(inj.nic_extra(at, 0, nom), SimSpan::ZERO));
            assert!(spans_equal(inj.mds_extra(at, nom), SimSpan::ZERO));
            assert!(spans_equal(inj.rpc_drop_delay(at), SimSpan::ZERO));
        }
    }

    #[test]
    fn slow_ost_hits_only_its_target() {
        let plan = FaultPlan::new().with(Fault::SlowOst {
            ost: 2,
            slowdown: 4.0,
            ramp_per_s: 0.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(2);
        let at = SimTime::from_secs(10);
        assert_eq!(inj.ost_extra(at, 2, nom, true), nom.scale(3.0));
        assert_eq!(inj.ost_extra(at, 1, nom, true), SimSpan::ZERO);
        // Other subsystems untouched.
        assert_eq!(inj.fabric_extra(at, nom), SimSpan::ZERO);
        assert_eq!(inj.mds_extra(at, nom), SimSpan::ZERO);
    }

    #[test]
    fn slow_ost_ramp_grows_with_time() {
        let plan = FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 2.0,
            ramp_per_s: 0.1,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(1);
        let early = inj.ost_extra(SimTime::ZERO, 0, nom, true);
        let late = inj.ost_extra(SimTime::from_secs(100), 0, nom, true);
        assert!(late.as_secs_f64() > early.as_secs_f64() * 5.0);
    }

    #[test]
    fn flaky_fabric_follows_duty_cycle() {
        let plan = FaultPlan::new().with(Fault::FlakyFabric {
            period_s: 10.0,
            duty: 0.3,
            slowdown: 5.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(1);
        // Head of the window: degraded.
        let bad = inj.fabric_extra(SimTime::from_secs_f64(21.0), nom);
        assert_eq!(bad, nom.scale(4.0));
        // Tail of the window: clean.
        let good = inj.fabric_extra(SimTime::from_secs_f64(27.0), nom);
        assert_eq!(good, SimSpan::ZERO);
    }

    #[test]
    fn mds_stall_serves_after_window_end() {
        let plan = FaultPlan::new().with(Fault::MdsStall {
            period_s: 20.0,
            stall_s: 4.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs_f64(0.001);
        // 1 s into the stall: wait the remaining 3 s.
        let d = inj.mds_extra(SimTime::from_secs_f64(41.0), nom);
        assert!((d.as_secs_f64() - 3.0).abs() < 1e-9);
        // Outside the stall: nothing.
        assert_eq!(
            inj.mds_extra(SimTime::from_secs_f64(50.0), nom),
            SimSpan::ZERO
        );
    }

    #[test]
    fn straggler_hits_only_its_node() {
        let plan = FaultPlan::new().with(Fault::StragglerNode {
            node: 3,
            slowdown: 6.0,
        });
        let mut inj = plan.fs_injector(7);
        let nom = SimSpan::from_secs(1);
        assert_eq!(inj.nic_extra(SimTime::ZERO, 3, nom), nom.scale(5.0));
        assert_eq!(inj.nic_extra(SimTime::ZERO, 0, nom), SimSpan::ZERO);
    }

    #[test]
    fn drop_retry_is_bounded_and_seed_reproducible() {
        let plan = FaultPlan::new().with(Fault::DropRetry {
            prob: 0.5,
            timeout_s: 2.0,
            max_retries: 3,
        });
        let draws = |seed: u64| -> Vec<f64> {
            let mut inj = plan.fs_injector(seed);
            (0..200)
                .map(|_| inj.rpc_drop_delay(SimTime::ZERO).as_secs_f64())
                .collect()
        };
        let a = draws(11);
        let b = draws(11);
        let c = draws(12);
        assert_eq!(a, b, "same seed, same drop pattern");
        assert_ne!(a, c, "different seed, different drop pattern");
        // Bounded: at most max_retries × timeout; and with p = 0.5 some
        // request must actually get dropped.
        assert!(a.iter().all(|&d| d <= 3.0 * 2.0 + 1e-9));
        assert!(a.iter().any(|&d| d > 0.0));
    }

    #[test]
    fn fs_and_mpi_injectors_use_independent_streams() {
        let plan = FaultPlan::new().with(Fault::DropRetry {
            prob: 0.4,
            timeout_s: 1.0,
            max_retries: 5,
        });
        let mut fs = plan.fs_injector(9);
        let mut mpi = plan.mpi_injector(9);
        let a: Vec<f64> = (0..100)
            .map(|_| fs.rpc_drop_delay(SimTime::ZERO).as_secs_f64())
            .collect();
        let b: Vec<f64> = (0..100)
            .map(|_| mpi.msg_drop_delay(SimTime::ZERO).as_secs_f64())
            .collect();
        assert_ne!(a, b, "lanes must be decorrelated");
    }

    #[test]
    fn faults_compose_additively() {
        let plan = FaultPlan::new()
            .with(Fault::SlowOst {
                ost: 0,
                slowdown: 2.0,
                ramp_per_s: 0.0,
            })
            .with(Fault::SlowOst {
                ost: 0,
                slowdown: 3.0,
                ramp_per_s: 0.0,
            });
        let mut inj = plan.fs_injector(1);
        let nom = SimSpan::from_secs(1);
        // (2-1) + (3-1) = 3× the nominal span of excess.
        assert_eq!(inj.ost_extra(SimTime::ZERO, 0, nom, false), nom.scale(3.0));
    }

    #[test]
    #[should_panic(expected = "invalid fault")]
    fn invalid_fault_rejected_at_plan_build() {
        let _ = FaultPlan::new().with(Fault::SlowOst {
            ost: 0,
            slowdown: 0.5,
            ramp_per_s: 0.0,
        });
    }
}
