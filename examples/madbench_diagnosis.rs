//! MADbench diagnosis walkthrough: reproduce the paper's §IV detective
//! story — run the cosmology I/O kernel on buggy Franklin, let the
//! ensemble analysis point at the middleware, then verify the fix.
//!
//!     cargo run --release --example madbench_diagnosis

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::diagnosis::{diagnose, Finding};
use events_to_ensembles::stats::distance::ks_statistic;
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::viz::ascii;
use events_to_ensembles::workloads::MadbenchConfig;

fn main() {
    let scale = 8; // 32 tasks, full-size 300 MB matrices
    let cfg = MadbenchConfig::paper().scaled(scale);
    println!(
        "MADbench: {} tasks x {} x {:.0} MB matrices, 1 MB-aligned slots \
         (gap {} KB -> a strided read pattern)",
        cfg.tasks,
        cfg.n_matrices,
        cfg.matrix_bytes as f64 / 1e6,
        cfg.gap_bytes() / 1024
    );

    // Step 1: the symptom — Franklin is mysteriously slow.
    let job = cfg.job();
    let buggy = Runner::new(
        &job,
        RunConfig::new(FsConfig::franklin().scaled(scale), 7, "madbench-franklin"),
    )
    .execute_one()
    .expect("run");
    println!("\nFranklin run time: {:.0} s", buggy.wall_secs());
    println!("{}", ascii::trace_diagram(buggy.trace(), 16, 100));

    // Step 2: the ensemble view — reads have a pathological right tail,
    // and it gets worse phase over phase.
    let reads = EmpiricalDist::new(&buggy.trace().durations_of(CallKind::Read));
    println!(
        "read ensemble: median {:.1}s but p99 {:.1}s, max {:.1}s",
        reads.median(),
        reads.quantile(0.99),
        reads.max()
    );
    println!("\nper-read middle-phase medians (the Figure 5(a) insight):");
    for (i, samples) in cfg.middle_reads_by_index(buggy.trace()).iter().enumerate() {
        if samples.is_empty() {
            continue;
        }
        let d = EmpiricalDist::new(samples);
        println!(
            "  read {:>2}: median {:>7.1}s  p90 {:>7.1}s",
            i + 1,
            d.median(),
            d.quantile(0.9)
        );
    }
    let findings = diagnose(buggy.trace());
    println!("\nautomatic diagnosis:");
    for f in &findings {
        println!("  - {f}");
    }
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, Finding::RightShoulder { .. })),
        "the shoulder should be flagged"
    );

    // Step 3: the fix — the patched platform (strided read-ahead
    // detection removed, exactly what Cray shipped for Franklin).
    let patched = Runner::new(
        &job,
        RunConfig::new(
            FsConfig::franklin_patched().scaled(scale),
            7,
            "madbench-patched",
        ),
    )
    .execute_one()
    .expect("run");
    println!(
        "\nafter the Lustre patch: {:.0} s -> {:.0} s  ({:.1}x, paper: 4.2x)",
        buggy.wall_secs(),
        patched.wall_secs(),
        buggy.wall_secs() / patched.wall_secs()
    );
    let reads_after = EmpiricalDist::new(&patched.trace().durations_of(CallKind::Read));
    println!(
        "read tail: max {:.1}s -> {:.1}s; KS distance between the read \
         ensembles: {:.2}",
        reads.max(),
        reads_after.max(),
        ks_statistic(&reads, &reads_after)
    );
    println!("\nremaining findings after the patch:");
    let after = diagnose(patched.trace());
    if after.is_empty() {
        println!("  (none — the ensembles look healthy)");
    }
    for f in &after {
        println!("  - {f}");
    }
}
