//! IOR parameter study: sweep the transfer-split factor k and watch the
//! Law of Large Numbers buy throughput — the paper's Figure 2 effect,
//! plus the analytical prediction from the k=1 ensemble alone.
//!
//!     cargo run --release --example ior_parameter_study

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::lln;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::IorConfig;

fn main() {
    let scale = 8; // 128 tasks — fast but contended
    let platform = FsConfig::franklin().scaled(scale);
    println!(
        "platform: {} ({} OSTs, {:.1} GB/s fabric)",
        platform.name,
        platform.n_osts,
        platform.fabric_bw / 1e9
    );
    println!(
        "\n{:>3} {:>10} {:>12} {:>10} {:>8}",
        "k", "xfer(MB)", "rate(MB/s)", "speedup", "cv(t_k)"
    );

    let mut base_rate = None;
    let mut k1_dist: Option<EmpiricalDist> = None;
    for k in [1u32, 2, 4, 8, 16] {
        let cfg = IorConfig {
            segments: k,
            repetitions: 1,
            ..IorConfig::paper_fig1()
        }
        .scaled(scale);
        let job = cfg.job();
        let res = Runner::new(
            &job,
            RunConfig::new(platform.clone(), 100 + k as u64, "ior-k"),
        )
        .execute_one()
        .expect("run");

        // Reported rate: slowest write defines the phase (paper §III-A).
        let start = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.start_ns)
            .min()
            .unwrap();
        let end = res
            .trace()
            .of_kind(CallKind::Write)
            .map(|r| r.end_ns)
            .max()
            .unwrap();
        let rate = res.stats.bytes_written as f64 / 1e6 / ((end - start) as f64 / 1e9);

        // Per-task totals.
        let mut totals = vec![0.0f64; cfg.tasks as usize];
        for r in res.trace().of_kind(CallKind::Write) {
            totals[r.rank as usize] += r.secs();
        }
        let dist = EmpiricalDist::new(&totals);
        let base = *base_rate.get_or_insert(rate);
        println!(
            "{:>3} {:>10.0} {:>12.0} {:>9.1}% {:>8.3}",
            k,
            cfg.transfer_bytes() as f64 / 1e6,
            rate,
            (rate / base - 1.0) * 100.0,
            dist.cv().unwrap_or(0.0)
        );
        if k == 1 {
            k1_dist = Some(dist);
        }
    }

    // The analytical story: convolve the k=1 ensemble k-fold and read the
    // predicted worst case over all tasks.
    let k1 = k1_dist.expect("k=1 ran");
    println!("\nconvolution prediction from the k=1 ensemble (no further runs):");
    for p in [1u32, 2, 4, 8, 16].map(|k| lln::predict(&k1, k, 128, 96)) {
        println!(
            "  k={:>2}: E[t_k]={:.1}s  cv={:.3}  E[slowest]/k={:.1}s",
            p.k,
            p.mean,
            p.cv,
            p.expected_worst / p.k as f64
        );
    }
    println!(
        "\ntakeaway: same bytes, more calls -> narrower per-task totals -> \
         the slowest task (which the barrier waits for) improves."
    );
}
