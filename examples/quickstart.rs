//! Quickstart: run a small parallel-I/O experiment on the simulated
//! platform, capture its IPM-I/O trace, and analyse the ensemble.
//!
//!     cargo run --release --example quickstart
//!
//! This walks the full pipeline of the paper in miniature: build a
//! workload (64 tasks, each writing 512 MB to a shared file), execute it
//! in virtual time against a Lustre-like file system, then look at the
//! *distribution* of write times rather than individual events.

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::diagnosis::diagnose;
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::hist::Histogram;
use events_to_ensembles::stats::modes::{find_modes, harmonic_structure};
use events_to_ensembles::stats::order_stats;
use events_to_ensembles::trace::summary;
use events_to_ensembles::viz::ascii;
use events_to_ensembles::workloads::IorConfig;

fn main() {
    // 1. An experiment: IOR-style, 64 tasks × 512 MB, one barriered phase.
    let workload = IorConfig {
        tasks: 64,
        block_bytes: 512 << 20,
        segments: 1,
        repetitions: 1,
        read_back: false,
        file_per_process: false,
    };

    // 2. A platform: Franklin, shrunk 16x so 64 tasks see the same
    //    per-task bandwidth shares the paper's 1024 did.
    let platform = FsConfig::franklin().scaled(16);

    // 3. Run it. The seed is the only source of run-to-run variability.
    let job = workload.job();
    let result = Runner::new(&job, RunConfig::new(platform, 42, "quickstart"))
        .execute_one()
        .expect("run failed");
    println!("run time: {:.1} s (virtual)\n", result.wall_secs());

    // 4. The IPM-style per-call summary.
    println!("{}", summary::render(result.trace()));

    // 5. From events to ensembles: the write-time distribution.
    let durations = result
        .trace()
        .durations_of(events_to_ensembles::trace::CallKind::Write);
    let dist = EmpiricalDist::new(&durations);
    println!(
        "write() ensemble: n={}  median {:.1}s  p90 {:.1}s  max {:.1}s  cv {:.2}",
        dist.n(),
        dist.median(),
        dist.quantile(0.9),
        dist.max(),
        dist.cv().unwrap_or(0.0)
    );
    let hist = Histogram::from_samples(&durations, 32);
    println!(
        "\n{}",
        ascii::histogram_text(&hist, 40, "write() completion times")
    );

    // 6. Modes: the paper's harmonic fingerprint of node-level sharing.
    let modes = find_modes(&dist, 256, 0.1);
    for m in &modes {
        println!("mode at {:.1}s (mass {:.0}%)", m.location, m.mass * 100.0);
    }
    if let Some(h) = harmonic_structure(&modes, 0.2) {
        println!(
            "harmonic ladder: T={:.1}s, orders {:?}",
            h.fundamental, h.orders
        );
    }

    // 7. Order statistics: what the slowest of N tasks costs.
    println!(
        "\nE[slowest of 64] = {:.1}s vs mean {:.1}s — the barrier pays for the tail",
        order_stats::expected_max(&dist, 64),
        dist.mean()
    );

    // 8. Automatic diagnosis.
    let findings = diagnose(result.trace());
    println!("\ndiagnosis ({} findings):", findings.len());
    for f in &findings {
        println!("  - {f}");
    }
}
