//! GCRM tuning session: walk the paper's §V optimization ladder — show
//! how each middleware change (collective buffering, alignment, metadata
//! aggregation) removes a specific mechanism the ensemble analysis
//! exposes.
//!
//!     cargo run --release --example gcrm_tuning

use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::diagnosis::diagnose;
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::rates::sec_per_mb_samples;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::gcrm::GcrmConfig;

fn main() {
    let scale = 16; // 640 tasks, 5 aggregators
    println!("GCRM I/O kernel, four configurations (paper Figure 6):\n");
    println!(
        "{:<38} {:>9} {:>11} {:>10} {:>10}",
        "stage", "time(s)", "conflicts", "sync-wr", "meta-ops"
    );

    let mut runs = Vec::new();
    for stage in 0..4u32 {
        let cfg = GcrmConfig::paper_stage(stage).scaled(scale);
        let job = cfg.job();
        let res = Runner::new(
            &job,
            RunConfig::new(
                FsConfig::franklin().scaled(scale),
                11,
                format!("gcrm-s{stage}"),
            ),
        )
        .execute_one()
        .expect("run");
        println!(
            "{:<38} {:>9.0} {:>11} {:>10} {:>10}",
            match stage {
                0 => "0 baseline (10k writers, unaligned)",
                1 => "1 collective buffering",
                2 => "2 + 1 MiB alignment",
                _ => "3 + metadata aggregation",
            },
            res.wall_secs(),
            res.lock_stats.contended,
            res.stats.sync_writes,
            res.trace().of_kind(CallKind::MetaWrite).count(),
        );
        runs.push(res);
    }

    // The per-task rate story of the histograms (sec/MB, the paper's
    // normalized axis).
    println!("\nper-task data-write cost (sec/MB — lower is better):");
    for (stage, res) in runs.iter().enumerate() {
        let s = sec_per_mb_samples(res.trace(), |r| r.call == CallKind::Write);
        let d = EmpiricalDist::new(&s);
        println!(
            "  stage {stage}: median {:.3} s/MB ({:.1} MB/s per writer), p99 {:.3} s/MB",
            d.median(),
            1.0 / d.median().max(1e-12),
            d.quantile(0.99)
        );
    }

    // What the diagnosis says at each rung.
    println!("\ndiagnosis per stage:");
    for (stage, res) in runs.iter().enumerate() {
        let findings = diagnose(res.trace());
        println!("  stage {stage}: {} findings", findings.len());
        for f in &findings {
            println!("    - {f}");
        }
    }

    println!(
        "\noverall: {:.0} s -> {:.0} s ({:.1}x; paper: 310 -> 75 s, >4x)",
        runs[0].wall_secs(),
        runs[3].wall_secs(),
        runs[0].wall_secs() / runs[3].wall_secs()
    );
}
