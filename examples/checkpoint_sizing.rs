//! Checkpoint sizing: use the simulator + ensemble statistics to answer
//! the question the paper's GCRM study opens with — "in order for I/O to
//! consume less than 5% of the total run time, the I/O system must
//! sustain at least …" — for a generic checkpointing application.
//!
//!     cargo run --release --example checkpoint_sizing

use events_to_ensembles::des::SimSpan;
use events_to_ensembles::fs::FsConfig;
use events_to_ensembles::mpi::{RunConfig, Runner};
use events_to_ensembles::stats::empirical::EmpiricalDist;
use events_to_ensembles::stats::order_stats;
use events_to_ensembles::trace::CallKind;
use events_to_ensembles::workloads::CheckpointConfig;

fn main() {
    let scale = 8; // 32 tasks
    let platform = FsConfig::franklin().scaled(scale);
    println!(
        "How much compute per checkpoint keeps I/O under 5% of run time?\n\
         platform {}, {} tasks x 256 MB state, 4 epochs\n",
        platform.name,
        256 / scale
    );
    println!(
        "{:>14} {:>12} {:>12} {:>14}",
        "compute(s)", "runtime(s)", "io fraction", "ok (<5%)?"
    );

    let mut last_trace = None;
    for compute_s in [0u64, 60, 240, 600, 1800] {
        let cfg = CheckpointConfig {
            compute: SimSpan::from_secs(compute_s),
            ..CheckpointConfig::default().scaled(scale)
        };
        let job = cfg.job();
        let res = Runner::new(
            &job,
            RunConfig::new(platform.clone(), 3, format!("ckpt-{compute_s}")),
        )
        .execute_one()
        .expect("run");
        let frac = CheckpointConfig::io_fraction(res.trace());
        println!(
            "{:>14} {:>12.0} {:>11.1}% {:>14}",
            compute_s,
            res.wall_secs(),
            frac * 100.0,
            if frac < 0.05 { "yes" } else { "no" }
        );
        last_trace = Some(res.into_trace());
    }

    // The ensemble view of one checkpoint: the barrier pays for the
    // slowest writer, so sizing must use the order statistic, not the
    // mean.
    let trace = last_trace.unwrap();
    let d = EmpiricalDist::new(&trace.durations_of(CallKind::Write));
    let n = trace.meta.ranks;
    println!(
        "\ncheckpoint write ensemble: mean {:.1}s, but E[slowest of {}] = {:.1}s",
        d.mean(),
        n,
        order_stats::expected_max(&d, n)
    );
    println!(
        "-> a 5% budget computed from the MEAN write time would be {:.0}% \
         over-optimistic;",
        (order_stats::expected_max(&d, n) / d.mean() - 1.0) * 100.0
    );
    println!("   the ensemble's right tail is what the barrier charges you for.");
}
